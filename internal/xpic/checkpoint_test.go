package xpic

import (
	"bytes"
	"encoding/binary"
	"testing"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/scr"
)

// TestSnapshotRoundTrip checks that Restore(Snapshot()) is the identity.
func TestSnapshotRoundTrip(t *testing.T) {
	rt := newRuntime(1, 0)
	cfg := QuickConfig(5)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			comm := p.World()
			sim := NewSim(p, comm, cfg)
			for sim.Step < 5 {
				sim.Advance(p, comm)
			}
			snap := sim.Snapshot()
			before := sim.Checksum()

			other := NewSim(p, comm, cfg)
			if err := other.Restore(snap); err != nil {
				return err
			}
			if other.Step != 5 {
				t.Errorf("restored step = %d", other.Step)
			}
			if other.Checksum() != before {
				t.Errorf("checksum after restore differs: %v vs %v", other.Checksum(), before)
			}
			// Fields restored bit-exactly.
			if !bytes.Equal(snap, other.Snapshot()) {
				t.Error("double snapshot differs")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRestartEquivalence is the resilience integration test: a run that
// checkpoints at step 6, "crashes" at step 9 and restarts from the
// checkpoint must reach exactly the same state at step 12 as an undisturbed
// run — bit-for-bit (§III-D's restart correctness).
func TestRestartEquivalence(t *testing.T) {
	cfg := QuickConfig(12)
	run := func(interrupted bool) float64 {
		rt := newRuntime(2, 0)
		var sum float64
		results := make(chan float64, 2)
		_, err := rt.Launch(psmpi.LaunchSpec{
			Nodes: clusterNodes(rt, 2),
			Main: func(p *psmpi.Proc) error {
				comm := p.World()
				sim := NewSim(p, comm, cfg)
				var snap []byte
				for sim.Step < 9 {
					sim.Advance(p, comm)
					if sim.Step == 6 {
						snap = sim.Snapshot()
					}
				}
				if interrupted {
					// Crash: throw the state away, restart from checkpoint.
					sim = NewSim(p, comm, cfg)
					if err := sim.Restore(snap); err != nil {
						return err
					}
				}
				for sim.Step < 12 {
					sim.Advance(p, comm)
				}
				results <- sim.Checksum()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sum = <-results + <-results
		return sum
	}
	plain := run(false)
	restarted := run(true)
	if plain != restarted {
		t.Fatalf("restart changed physics: %v vs %v", plain, restarted)
	}
}

// TestCheckpointThroughSCR stores xPic snapshots through the full SCR stack
// (local NVMe level) and restores them.
func TestCheckpointThroughSCR(t *testing.T) {
	rt := newRuntime(2, 0)
	cfg := QuickConfig(4)
	nodes := clusterNodes(rt, 2)
	devs := map[int]*nvme.Device{}
	for _, n := range nodes {
		devs[n.ID] = nvme.New(nvme.P3700())
	}
	fs := beegfs.New(rt.Network(), beegfs.Config{})
	mgr, err := scr.New(scr.Config{BuddyEvery: 1}, rt.Network(), fs, nodes, devs)
	if err != nil {
		t.Fatal(err)
	}

	snaps := make([][]byte, 2)
	_, err = rt.Launch(psmpi.LaunchSpec{
		Nodes: nodes,
		Main: func(p *psmpi.Proc) error {
			comm := p.World()
			sim := NewSim(p, comm, cfg)
			for sim.Step < 4 {
				sim.Advance(p, comm)
			}
			snaps[p.Rank()] = sim.Snapshot()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	levels := mgr.BeginCheckpoint(4)
	for rank := 0; rank < 2; rank++ {
		if err := mgr.Checkpoint(ioev.Detach(nil, 0), rank, 4, snaps[rank], levels); err != nil {
			t.Fatal(err)
		}
	}
	// Node of rank 0 dies; its snapshot must come back via the buddy level.
	mgr.FailNode(nodes[0].ID)
	step, lvls, ok := mgr.BestRestart()
	if !ok || step != 4 {
		t.Fatalf("restart unavailable: %v", ok)
	}
	got, err := mgr.Restore(ioev.Detach(nil, 0), 0, 4, lvls[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, snaps[0]) {
		t.Fatal("SCR round trip corrupted the snapshot")
	}
	// And it must actually restore into a Sim (same 2-rank decomposition —
	// a snapshot is per-rank state, as in SCR).
	_, err = rt.Launch(psmpi.LaunchSpec{
		Nodes: nodes,
		Main: func(p *psmpi.Proc) error {
			sim := NewSim(p, p.World(), cfg)
			if p.Rank() == 0 {
				return sim.Restore(got)
			}
			return sim.Restore(snaps[1])
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsGarbage checks the error paths of the snapshot decoder.
func TestRestoreRejectsGarbage(t *testing.T) {
	rt := newRuntime(1, 0)
	cfg := QuickConfig(1)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			sim := NewSim(p, p.World(), cfg)
			if err := sim.Restore([]byte("not a snapshot")); err == nil {
				t.Error("garbage accepted")
			}
			if err := sim.Restore(nil); err == nil {
				t.Error("empty snapshot accepted")
			}
			// Truncated real snapshot.
			snap := sim.Snapshot()
			if err := sim.Restore(snap[:len(snap)/2]); err == nil {
				t.Error("truncated snapshot accepted")
			}
			// Corrupt length field whose byte size overflows int: must error,
			// not panic allocating (offset 24: first field array's length).
			corrupt := append([]byte(nil), snap...)
			binary.LittleEndian.PutUint64(corrupt[24:], 1<<60)
			if err := sim.Restore(corrupt); err == nil {
				t.Error("huge length field accepted")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
