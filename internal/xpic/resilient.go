package xpic

import (
	"encoding/binary"
	"fmt"
	"math"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

// CheckpointStore is the storage side of a resilient run — implemented by
// the SCR glue in internal/resilience. Methods run in rank goroutines under
// the job's execution kernel and advance the calling rank's clock by the
// modelled storage cost, so checkpoint and restore time lands in the job's
// virtual timeline (and therefore in the makespan) exactly where it occurs.
//
// rank is the global resilience rank: in mono mode the world rank; in split
// mode booster (particle) rank i is rank i and cluster (field) rank i is
// rank RanksPerSolver+i.
type CheckpointStore interface {
	// Save persists one rank's snapshot of a completed step. Called
	// collectively: every rank of the job saves the same step.
	Save(p *psmpi.Proc, rank, step int, data []byte) error
	// Complete finishes the collective checkpoint of a step (e.g. closes a
	// global SION container). Called by global rank 0 after all Saves.
	Complete(p *psmpi.Proc, step int) error
	// Load returns the snapshot a rank restarts from; only called when the
	// run begins at StartStep > 0.
	Load(p *psmpi.Proc, rank int) ([]byte, error)
}

// ResilientSpec describes one attempt of a resilient xPic run: a job that
// checkpoints through a CheckpointStore every CheckpointEvery steps, may be
// torn down mid-step by the armed failure injector, and — when StartStep > 0
// — restores every rank's state from the store before computing on.
type ResilientSpec struct {
	// Mode selects the execution scenario (Cluster, Booster, C+B).
	Mode Mode
	// Nodes are the solver nodes: the job's nodes in mono modes, the
	// Booster (particle-solver) nodes in split mode.
	Nodes []*machine.Node
	// RanksPerSolver is the rank count per solver (len(Nodes)).
	RanksPerSolver int
	Cfg            Config
	// StartTime offsets the attempt's virtual clock: a restart attempt
	// begins where the failure left off plus the restart overhead.
	StartTime vclock.Time
	// StartStep is the completed step to resume from (0 = fresh start).
	StartStep int
	// CheckpointEvery checkpoints after every k-th completed step (0 = no
	// checkpoints).
	CheckpointEvery int
	// Store is required when CheckpointEvery > 0 or StartStep > 0.
	Store CheckpointStore
	// Failures optionally arms node-failure injection for this attempt.
	Failures *psmpi.FailureInjector
}

func (spec ResilientSpec) validate() error {
	if len(spec.Nodes) != spec.RanksPerSolver {
		return fmt.Errorf("xpic: %d nodes for %d ranks per solver", len(spec.Nodes), spec.RanksPerSolver)
	}
	if err := spec.Cfg.Validate(spec.RanksPerSolver); err != nil {
		return err
	}
	if (spec.CheckpointEvery > 0 || spec.StartStep > 0) && spec.Store == nil {
		return fmt.Errorf("xpic: resilient run needs a checkpoint store")
	}
	if spec.StartStep < 0 || spec.StartStep >= spec.Cfg.Steps {
		return fmt.Errorf("xpic: start step %d outside [0,%d)", spec.StartStep, spec.Cfg.Steps)
	}
	return nil
}

// RunResilient executes one attempt of a resilient xPic run and returns its
// report. A run aborted by an injected failure returns the NodeFailure-
// carrying error from the launch (recover it with psmpi.FailureOf); the
// restart replay around repeated attempts lives in internal/resilience.
func RunResilient(rt *psmpi.Runtime, spec ResilientSpec) (Report, error) {
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	switch spec.Mode {
	case ClusterOnly, BoosterOnly:
		return runResilientMono(rt, spec)
	case SplitCB:
		return runResilientSplit(rt, spec)
	default:
		return Report{}, fmt.Errorf("xpic: unknown mode %v", spec.Mode)
	}
}

// kernelWorkers picks the kernel worker count for this attempt's launch:
// the process-wide default (the -kworkers flag) for plain compute runs,
// serial when checkpoint storage is in play — the storage models schedule
// completion callbacks from rank context, which a parallel round forbids.
// Failure injection needs no check here: the runtime itself falls back and
// records the reason.
func (spec ResilientSpec) kernelWorkers() int {
	if spec.Store != nil {
		return 0
	}
	return psmpi.DefaultKernelWorkers()
}

// checkpointDue says whether the state after `completed` steps is a
// checkpoint point.
func (spec ResilientSpec) checkpointDue(completed int) bool {
	return spec.CheckpointEvery > 0 && completed > 0 && completed%spec.CheckpointEvery == 0 &&
		completed < spec.Cfg.Steps // the final state needs no checkpoint
}

// checkpointCollective runs the collective checkpoint protocol of one world:
// quiesce, save every rank, then global rank 0 completes the step once all
// writes landed. grank is the caller's global resilience rank.
func checkpointCollective(p *psmpi.Proc, comm *psmpi.Comm, grank, step int, data []byte, store CheckpointStore) error {
	p.Barrier(comm)
	if err := store.Save(p, grank, step, data); err != nil {
		return fmt.Errorf("xpic: checkpoint step %d rank %d: %w", step, grank, err)
	}
	p.Barrier(comm)
	if grank == 0 {
		if err := store.Complete(p, step); err != nil {
			return fmt.Errorf("xpic: complete checkpoint step %d: %w", step, err)
		}
	}
	p.Barrier(comm)
	return nil
}

// runResilientMono is RunMono plus checkpoint/restore: the Listing-1 loop on
// the steppable Sim, snapshotting the full rank state at the cadence.
func runResilientMono(rt *psmpi.Runtime, spec ResilientSpec) (Report, error) {
	s := &sink{rep: Report{Mode: spec.Mode, RanksPerSolver: spec.RanksPerSolver, Steps: spec.Cfg.Steps}}
	res, err := rt.Launch(psmpi.LaunchSpec{
		Nodes:         spec.Nodes,
		StartTime:     spec.StartTime,
		Failures:      spec.Failures,
		KernelWorkers: spec.kernelWorkers(),
		Main: func(p *psmpi.Proc) error {
			comm := p.World()
			sim := NewSim(p, comm, spec.Cfg)
			if spec.StartStep > 0 {
				data, err := spec.Store.Load(p, p.Rank())
				if err != nil {
					return err
				}
				if err := sim.Restore(data); err != nil {
					return err
				}
				if sim.Step != spec.StartStep {
					return fmt.Errorf("xpic: restored step %d, expected %d", sim.Step, spec.StartStep)
				}
			}
			for sim.Step < spec.Cfg.Steps {
				sim.Advance(p, comm)
				if spec.Cfg.Verbose && p.Rank() == 0 && (sim.Step-1)%50 == 0 {
					fmt.Printf("xpic[mono] step %4d  E_fld=%.6g  E_kin=%.6g  CG=%d\n",
						sim.Step-1, sim.FieldE, sim.KinE, sim.Fld.LastIters)
				}
				if spec.checkpointDue(sim.Step) {
					if err := checkpointCollective(p, comm, p.Rank(), sim.Step, sim.Snapshot(), spec.Store); err != nil {
						return err
					}
				}
			}
			reportSim(p, comm, sim, s)
			return nil
		},
	})
	if err != nil {
		return Report{}, err
	}
	s.finalize(spec.RanksPerSolver)
	s.rep.Makespan = res.Makespan
	return s.rep, nil
}

// runResilientSplit is RunSplit plus checkpoint/restore. Both sides
// checkpoint at the end of the same step: the booster side snapshots its
// particles (fields and moments are regenerated by the per-step exchange),
// the cluster side its grid arrays (fields after calculateB plus the moments
// that feed the next calculateE). Each world runs the collective protocol
// among itself; the booster side, which owns global rank 0, completes the
// step.
func runResilientSplit(rt *psmpi.Runtime, spec ResilientSpec) (Report, error) {
	n := spec.RanksPerSolver
	s := &sink{rep: Report{Mode: SplitCB, RanksPerSolver: n, Steps: spec.Cfg.Steps}}
	bin := fmt.Sprintf("xpic_cluster_resilient_%p", s)
	rt.Register(bin, func(p *psmpi.Proc) error {
		return resilientClusterMain(p, spec, s)
	})
	res, err := rt.Launch(psmpi.LaunchSpec{
		Nodes:         spec.Nodes,
		StartTime:     spec.StartTime,
		Failures:      spec.Failures,
		KernelWorkers: spec.kernelWorkers(),
		Main: func(p *psmpi.Proc) error {
			return resilientBoosterMain(p, spec, s, bin)
		},
	})
	if err != nil {
		return Report{}, err
	}
	s.finalize(n)
	s.rep.Makespan = res.Makespan
	return s.rep, nil
}

// resilientBoosterMain is boosterMain with restore at entry and checkpoints
// at the cadence.
func resilientBoosterMain(p *psmpi.Proc, spec ResilientSpec, s *sink, clusterBinary string) error {
	cfg := spec.Cfg
	comm := p.World()
	ranks := comm.Size()
	inter, err := p.Spawn(comm, psmpi.SpawnSpec{
		Binary: clusterBinary,
		Procs:  ranks,
		Module: machine.Cluster,
	})
	if err != nil {
		return fmt.Errorf("xpic: spawning cluster side: %w", err)
	}
	peer := p.Rank()

	g := NewGrid(cfg.NX, cfg.NY, p.Rank(), ranks)
	pcl := NewParticleSolver(g, cfg)
	if spec.StartStep > 0 {
		data, err := spec.Store.Load(p, p.Rank())
		if err != nil {
			return err
		}
		step, err := restoreParticles(pcl, data)
		if err != nil {
			return err
		}
		if step != spec.StartStep {
			return fmt.Errorf("xpic: booster restored step %d, expected %d", step, spec.StartStep)
		}
	}

	var t Times
	var kinE float64
	for step := spec.StartStep; step < cfg.Steps; step++ {
		var fbuf []float64
		auxBefore := t.Aux
		phase(p, &t.Exchange, func() {
			req := p.Irecv(inter, peer, tagIfaceF)
			if cfg.NoOverlap {
				fbuf, _ = p.WaitF64(req)
			}
			if step%cfg.DiagEvery == 0 {
				phase(p, &t.Aux, func() {
					kinE = p.AllreduceScalar(comm, pcl.KineticEnergy(p), psmpi.OpSum)
				})
			}
			if !cfg.NoOverlap {
				fbuf, _ = p.WaitF64(req)
			}
		})
		t.Exchange -= t.Aux - auxBefore

		phase(p, &t.Exchange, func() {
			unpackFields(p, g, FieldNames, fbuf)
			g.ExchangeHalos(p, comm, FieldNames...)
		})

		phase(p, &t.Particle, func() {
			pcl.Move(p)
			pcl.Migrate(p, comm)
			pcl.Gather(p)
			g.ReduceMomentHalos(p, comm)
		})

		phase(p, &t.Exchange, func() {
			mbuf := packFields(p, g, MomentNames)
			req := p.IssendF64Shared(inter, peer, tagIfaceM, mbuf)
			p.Wait(req)
		})
		if cfg.Verbose && p.Rank() == 0 && step%50 == 0 {
			fmt.Printf("xpic[C+B booster] step %4d  E_kin=%.6g  particles=%d\n", step, kinE, pcl.TotalN())
		}

		if spec.checkpointDue(step + 1) {
			if err := checkpointCollective(p, comm, p.Rank(), step+1,
				snapParticles(pcl, step+1), spec.Store); err != nil {
				return err
			}
		}
	}

	finalKin := p.AllreduceScalar(comm, pcl.KineticEnergy(p), psmpi.OpSum)
	_ = kinE

	s.addTimes(Times{Particle: t.Particle, Exchange: t.Exchange, Aux: t.Aux}, 0)
	s.addPhysics(p.Rank(), 0, pickRank0(p, finalKin), pcl.TotalCharge(), checksum(pcl))
	return nil
}

// resilientClusterMain is clusterMain with restore at entry and checkpoints
// at the cadence. Its global resilience rank is RanksPerSolver + rank.
func resilientClusterMain(p *psmpi.Proc, spec ResilientSpec, s *sink) error {
	cfg := spec.Cfg
	comm := p.World()
	inter := p.Parent()
	if inter == nil {
		return fmt.Errorf("xpic: cluster side has no parent intercommunicator")
	}
	peer := p.Rank()
	grank := spec.RanksPerSolver + p.Rank()

	g := NewGrid(cfg.NX, cfg.NY, p.Rank(), comm.Size())
	fld := NewFieldSolver(g, cfg)
	gridState := append(append([]string(nil), FieldNames...), MomentNames...)
	if spec.StartStep > 0 {
		data, err := spec.Store.Load(p, grank)
		if err != nil {
			return err
		}
		step, err := restoreGrid(g, gridState, data)
		if err != nil {
			return err
		}
		if step != spec.StartStep {
			return fmt.Errorf("xpic: cluster restored step %d, expected %d", step, spec.StartStep)
		}
	}

	var t Times
	cgIters := 0
	var fieldE float64
	for step := spec.StartStep; step < cfg.Steps; step++ {
		phase(p, &t.Field, func() { fld.SolveE(p, comm) })
		cgIters += fld.LastIters

		auxBefore := t.Aux
		phase(p, &t.Exchange, func() {
			fbuf := packFields(p, g, FieldNames)
			req := p.IssendF64Shared(inter, peer, tagIfaceF, fbuf)
			if cfg.NoOverlap {
				p.Wait(req)
			}
			if step%cfg.DiagEvery == 0 {
				phase(p, &t.Aux, func() {
					fieldE = p.AllreduceScalar(comm, fld.FieldEnergy(p), psmpi.OpSum)
				})
			}
			if !cfg.NoOverlap {
				p.Wait(req)
			}
		})
		t.Exchange -= t.Aux - auxBefore

		phase(p, &t.Exchange, func() {
			req := p.Irecv(inter, peer, tagIfaceM)
			data, _ := p.WaitF64(req)
			unpackFields(p, g, MomentNames, data)
		})

		phase(p, &t.Field, func() { fld.SolveB(p, comm) })

		if spec.checkpointDue(step + 1) {
			if err := checkpointCollective(p, comm, grank, step+1,
				snapGrid(g, gridState, step+1), spec.Store); err != nil {
				return err
			}
		}
	}

	finalField := p.AllreduceScalar(comm, fld.FieldEnergy(p), psmpi.OpSum)
	_ = fieldE

	s.addTimes(Times{Field: t.Field, Exchange: t.Exchange, Aux: t.Aux}, cgIters)
	s.addPhysics(p.Rank(), pickRank0(p, finalField), 0, 0, 0)
	return nil
}

// Split-side snapshot encoding: the same little-endian f64-array framing as
// Sim.Snapshot, under distinct magics so a mixed-up restore fails loudly.
const (
	snapMagicParticles = uint32(0x78504350) // "xPCP"
	snapMagicGrid      = uint32(0x78504347) // "xPCG"
)

type snapEnc struct{ out []byte }

func (e *snapEnc) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.out = append(e.out, b[:]...)
}

func (e *snapEnc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.out = append(e.out, b[:]...)
}

func (e *snapEnc) f64s(a []float64) {
	e.u64(uint64(len(a)))
	for _, v := range a {
		e.u64(math.Float64bits(v))
	}
}

type snapDec struct {
	data []byte
	pos  int
	what string
}

func (d *snapDec) fail(what string) error {
	return fmt.Errorf("xpic: corrupt %s snapshot (%s at offset %d)", d.what, what, d.pos)
}

func (d *snapDec) u32() (uint32, bool) {
	if d.pos+4 > len(d.data) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, true
}

func (d *snapDec) u64() (uint64, bool) {
	if d.pos+8 > len(d.data) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v, true
}

func (d *snapDec) f64s() ([]float64, bool) {
	n, ok := d.u64()
	// Compare against the remaining bytes divided down, not 8*n: a corrupt
	// length field must fail the bounds check, not overflow it and panic in
	// make.
	if !ok || n > uint64((len(d.data)-d.pos)/8) {
		return nil, false
	}
	out := make([]float64, n)
	for i := range out {
		v, _ := d.u64()
		out[i] = math.Float64frombits(v)
	}
	return out, true
}

// snapParticles serialises the particle solver's restart state (the booster
// side's checkpoint payload).
func snapParticles(pcl *ParticleSolver, step int) []byte {
	var e snapEnc
	e.u32(snapMagicParticles)
	e.u32(snapVersion)
	e.u64(uint64(step))
	e.u64(uint64(len(pcl.Species)))
	for _, sp := range pcl.Species {
		e.u64(math.Float64bits(sp.Q))
		e.f64s(sp.X)
		e.f64s(sp.Y)
		e.f64s(sp.VX)
		e.f64s(sp.VY)
		e.f64s(sp.VZ)
	}
	return e.out
}

// restoreParticles loads a snapParticles payload.
func restoreParticles(pcl *ParticleSolver, data []byte) (int, error) {
	d := snapDec{data: data, what: "particle"}
	if m, ok := d.u32(); !ok || m != snapMagicParticles {
		return 0, d.fail("magic")
	}
	if v, ok := d.u32(); !ok || v != snapVersion {
		return 0, d.fail("version")
	}
	step, ok := d.u64()
	if !ok {
		return 0, d.fail("step")
	}
	nSpec, ok := d.u64()
	if !ok || int(nSpec) != len(pcl.Species) {
		return 0, d.fail("species count")
	}
	for _, sp := range pcl.Species {
		q, ok := d.u64()
		if !ok {
			return 0, d.fail("charge")
		}
		sp.Q = math.Float64frombits(q)
		if sp.X, ok = d.f64s(); !ok {
			return 0, d.fail("X")
		}
		if sp.Y, ok = d.f64s(); !ok {
			return 0, d.fail("Y")
		}
		if sp.VX, ok = d.f64s(); !ok {
			return 0, d.fail("VX")
		}
		if sp.VY, ok = d.f64s(); !ok {
			return 0, d.fail("VY")
		}
		if sp.VZ, ok = d.f64s(); !ok {
			return 0, d.fail("VZ")
		}
	}
	return int(step), nil
}

// snapGrid serialises the named grid arrays (the cluster side's checkpoint
// payload: fields plus the moments feeding the next solve).
func snapGrid(g *Grid, names []string, step int) []byte {
	var e snapEnc
	e.u32(snapMagicGrid)
	e.u32(snapVersion)
	e.u64(uint64(step))
	e.u64(uint64(len(names)))
	for _, name := range names {
		e.f64s(g.F(name))
	}
	return e.out
}

// restoreGrid loads a snapGrid payload into the same named arrays.
func restoreGrid(g *Grid, names []string, data []byte) (int, error) {
	d := snapDec{data: data, what: "grid"}
	if m, ok := d.u32(); !ok || m != snapMagicGrid {
		return 0, d.fail("magic")
	}
	if v, ok := d.u32(); !ok || v != snapVersion {
		return 0, d.fail("version")
	}
	step, ok := d.u64()
	if !ok {
		return 0, d.fail("step")
	}
	nNames, ok := d.u64()
	if !ok || int(nNames) != len(names) {
		return 0, d.fail("array count")
	}
	for _, name := range names {
		a, ok := d.f64s()
		if !ok || len(a) != len(g.F(name)) {
			return 0, d.fail("array " + name)
		}
		copy(g.F(name), a)
	}
	return int(step), nil
}
