package xpic

import (
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/psmpi"
)

// singleParticle builds a solver holding exactly one particle of the given
// species parameters.
func singleParticle(g *Grid, cfg Config, qom, x, y, vx, vy, vz float64) *ParticleSolver {
	ps := &ParticleSolver{g: g, cfg: cfg, scale: 1}
	ps.Species = []*Species{{
		Spec: SpeciesSpec{Name: "test", QoverM: qom, ChargeSign: 1, Vth: 0},
		Q:    1,
		X:    []float64{x}, Y: []float64{y},
		VX: []float64{vx}, VY: []float64{vy}, VZ: []float64{vz},
	}}
	return ps
}

func TestUniformEAccelerates(t *testing.T) {
	// A particle in uniform Ez with q/m=1 gains vz = E·dt per step.
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		cfg.Dt = 0.5
		g := NewGrid(16, 16, 0, 1)
		ez := g.F(FEz)
		for i := range ez {
			ez[i] = 2.0
		}
		ps := singleParticle(g, cfg, 1.0, 8, 8, 0, 0, 0)
		ps.Move(p)
		want := 2.0 * 0.5 // E·dt
		if got := ps.Species[0].VZ[0]; math.Abs(got-want) > 1e-12 {
			t.Errorf("vz after one step = %v, want %v", got, want)
		}
		return nil
	})
}

func TestBorisPreservesSpeedInPureB(t *testing.T) {
	// The Boris rotation is energy conserving: in a pure magnetic field the
	// speed must not change over many steps.
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		cfg.Dt = 0.3
		g := NewGrid(16, 16, 0, 1)
		bz := g.F(FBz)
		for i := range bz {
			bz[i] = 1.5
		}
		ps := singleParticle(g, cfg, 1.0, 8, 8, 0.1, 0.05, 0.02)
		v0 := math.Sqrt(0.1*0.1 + 0.05*0.05 + 0.02*0.02)
		for step := 0; step < 200; step++ {
			ps.Move(p)
		}
		s := ps.Species[0]
		v1 := math.Sqrt(s.VX[0]*s.VX[0] + s.VY[0]*s.VY[0] + s.VZ[0]*s.VZ[0])
		if math.Abs(v1-v0) > 1e-12 {
			t.Errorf("speed drifted in pure B: %v → %v", v0, v1)
		}
		return nil
	})
}

func TestGyroRotationDirection(t *testing.T) {
	// Positive charge in Bz > 0 with vx > 0: the Lorentz force qv×B points
	// in -y initially.
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		cfg.Dt = 0.1
		g := NewGrid(16, 16, 0, 1)
		bz := g.F(FBz)
		for i := range bz {
			bz[i] = 1.0
		}
		ps := singleParticle(g, cfg, 1.0, 8, 8, 0.2, 0, 0)
		ps.Move(p)
		if vy := ps.Species[0].VY[0]; vy >= 0 {
			t.Errorf("vy after rotation = %v, want negative", vy)
		}
		return nil
	})
}

func TestDepositConservesCharge(t *testing.T) {
	// The bilinear deposit distributes exactly the particle's charge.
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		g := NewGrid(8, 8, 0, 1)
		ps := singleParticle(g, cfg, 1.0, 3.3, 4.7, 0, 0, 0)
		ps.Gather(p)
		rho := g.F(FRho)
		var sum float64
		for i := range rho {
			sum += rho[i]
		}
		if math.Abs(sum-1.0) > 1e-12 {
			t.Errorf("deposited charge = %v, want 1", sum)
		}
		return nil
	})
}

func TestInterpConstantField(t *testing.T) {
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		g := NewGrid(8, 8, 0, 1)
		a := g.F(FEx)
		for i := range a {
			a[i] = 5.5
		}
		ps := singleParticle(g, cfg, 1.0, 0, 0, 0, 0, 0)
		for _, xy := range [][2]float64{{0.1, 0.1}, {3.5, 4.5}, {7.9, 7.9}, {7.99, 0.01}} {
			if got := ps.interp(a, xy[0], xy[1]); math.Abs(got-5.5) > 1e-12 {
				t.Errorf("interp(%v) = %v, want 5.5", xy, got)
			}
		}
		return nil
	})
}

func TestQuickInterpDepositAdjoint(t *testing.T) {
	// Property: interpolation and deposition use the same weights — the
	// deposit of charge q at (x,y) then interpolated at (x,y) by a field
	// that is 1 at the four touched nodes yields exactly q's weights sum.
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		g := NewGrid(16, 16, 0, 1)
		ps := singleParticle(g, cfg, 1.0, 0, 0, 0, 0, 0)
		f := func(rx, ry uint16) bool {
			x := float64(rx) / 65536 * 16
			y := float64(ry) / 65536 * 14 // keep inside slab rows
			a := g.F(FRho)
			for i := range a {
				a[i] = 0
			}
			ps.deposit(a, x, y, 2.5)
			var sum float64
			for i := range a {
				sum += a[i]
			}
			return math.Abs(sum-2.5) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
		return nil
	})
}

func TestMigrationDelivery(t *testing.T) {
	// Across 4 ranks: place particles just past the slab edges and verify
	// they arrive on the right rank, preserving total count.
	rt := newRuntime(4, 0)
	total := make(chan int, 4)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 4),
		Main: func(p *psmpi.Proc) error {
			cfg := QuickConfig(1)
			g := NewGrid(16, 16, p.Rank(), 4) // 4 rows per slab
			ps := &ParticleSolver{g: g, cfg: cfg, scale: 1}
			// One particle that stays, one that belongs to the up-neighbour,
			// one to the down-neighbour (global y wraps).
			up := math.Mod(float64(g.Y0+g.LY)+0.5, 16)
			down := math.Mod(float64(g.Y0)-0.5+16, 16)
			ps.Species = []*Species{{
				Spec: SpeciesSpec{QoverM: 1, ChargeSign: 1},
				Q:    1,
				X:    []float64{1, 2, 3},
				Y:    []float64{float64(g.Y0) + 1, up, down},
				VX:   []float64{0, 0, 0}, VY: []float64{0, 0, 0}, VZ: []float64{0, 0, 0},
			}}
			ps.Migrate(p, p.World())
			// After migration: every particle must be inside this slab.
			for _, y := range ps.Species[0].Y {
				if y < float64(g.Y0) || y >= float64(g.Y0+g.LY) {
					t.Errorf("rank %d holds foreign particle y=%v", p.Rank(), y)
				}
			}
			total <- ps.Species[0].N()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	close(total)
	sum := 0
	for n := range total {
		sum += n
	}
	if sum != 12 {
		t.Fatalf("particles after migration = %d, want 12", sum)
	}
}

func TestDensityPerturbationImbalance(t *testing.T) {
	// With a sinusoidal density profile the per-slab particle counts differ
	// (the Fig. 8 load-imbalance mechanism) while both species stay locally
	// balanced (quasi-neutral).
	cfg := QuickConfig(1)
	cfg.DensityPerturbation = 0.3
	counts := make([]int, 4)
	for rank := 0; rank < 4; rank++ {
		g := NewGrid(cfg.NX, cfg.NY, rank, 4)
		ps := NewParticleSolver(g, cfg)
		counts[rank] = ps.TotalN()
		if ps.Species[0].N() != ps.Species[1].N() {
			t.Errorf("rank %d: species imbalance %d vs %d", rank, ps.Species[0].N(), ps.Species[1].N())
		}
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min == 0 {
		t.Errorf("no imbalance despite perturbation: %v", counts)
	}
	// And without perturbation the counts are equal.
	cfg.DensityPerturbation = 0
	g := NewGrid(cfg.NX, cfg.NY, 0, 4)
	g2 := NewGrid(cfg.NX, cfg.NY, 2, 4)
	if NewParticleSolver(g, cfg).TotalN() != NewParticleSolver(g2, cfg).TotalN() {
		t.Error("uniform plasma not balanced")
	}
}

func TestSlabDensityShareIntegratesToOne(t *testing.T) {
	// The per-slab shares must average to 1 over the whole domain.
	for _, ranks := range []int{1, 2, 4, 8} {
		var sum float64
		for rank := 0; rank < ranks; rank++ {
			g := NewGrid(64, 64, rank, ranks)
			sum += slabDensityShare(0.3, g)
		}
		if math.Abs(sum/float64(ranks)-1) > 1e-12 {
			t.Errorf("ranks=%d: mean share = %v", ranks, sum/float64(ranks))
		}
	}
}

func TestKineticEnergyPositive(t *testing.T) {
	withRank(t, func(p *psmpi.Proc) error {
		cfg := QuickConfig(1)
		g := NewGrid(16, 16, 0, 1)
		ps := NewParticleSolver(g, cfg)
		if e := ps.KineticEnergy(p); e <= 0 || math.IsNaN(e) {
			t.Errorf("kinetic energy = %v", e)
		}
		return nil
	})
}
