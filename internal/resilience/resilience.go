// Package resilience closes the loop of §III-D on the live simulation: it
// runs xPic under deterministic node-failure injection, checkpoints the
// running job through the SCR stack at a step cadence, and — when a failure
// tears the job down mid-step — rewinds to the best surviving checkpoint
// level and re-executes from that step, all inside one simulated timeline.
// The emitted makespan therefore contains the failure-free work plus every
// failure's lost work, restart overhead and restore cost, exactly the
// quantities the DEEP-ER SCR extension trades against checkpoint cadence.
//
// The pieces it wires together:
//
//   - psmpi.FailureInjector schedules seeded failures as kernel events and
//     aborts the whole job tree when one fires (internal/engine teardown);
//   - scr.Manager records multi-level checkpoints, loses state with the
//     failed node (FailNode), and picks the newest fully-recoverable step
//     and per-rank levels (BestRestart);
//   - xpic.RunResilient executes one attempt: restore, compute, checkpoint,
//     die mid-step if the injector says so.
//
// Run drives attempts until the job completes or the restart budget is
// exhausted. Everything is deterministic for a fixed seed: the failure
// sequence is drawn from a seeded RNG in virtual time, and the simulation
// itself is deterministic by construction, so a resilience scenario is
// byte-stable under any sweep worker count.
package resilience

import (
	"fmt"

	"clusterbooster/internal/core"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// Params describes one resilience scenario.
type Params struct {
	// Mode is the xPic execution scenario (Cluster, Booster, C+B).
	Mode xpic.Mode
	// Nodes is the rank count per solver.
	Nodes int
	// Workload is the xPic configuration.
	Workload xpic.Config
	// CheckpointEvery checkpoints after every k-th completed step (0 = no
	// checkpoints; every failure then restarts the job from step 0).
	CheckpointEvery int
	// SCR configures the checkpoint cadence across levels (BuddyEvery,
	// GlobalEvery) and the planning MTBF. The global level requires a mono
	// mode: in C+B mode the two process worlds cannot close one shared SION
	// container collectively.
	SCR scr.Config
	// MTBF is the injector's per-node mean time between failures (0 = no
	// failures). Note the unit: virtual seconds, on the same clock as the
	// job's makespan — CI workloads run virtual seconds, not hours, so
	// experiment MTBFs are scaled accordingly (the model is scale-free).
	MTBF vclock.Time
	// Seed fixes the failure sequence.
	Seed int64
	// MaxFailures bounds how many failures the injector fires in total, so
	// the job eventually runs to completion.
	MaxFailures int
	// MaxRestarts bounds the replay loop (default 16).
	MaxRestarts int
	// RestartOverhead is the fixed relaunch cost per restart — node reboot,
	// requeue, process start — paid between the failure instant and the next
	// attempt's boot. Restore I/O is modelled separately, inside the ranks.
	RestartOverhead vclock.Time
}

func (p Params) maxRestarts() int {
	if p.MaxRestarts <= 0 {
		return 16
	}
	return p.MaxRestarts
}

// Restart describes one failure/restart cycle of an outcome.
type Restart struct {
	// At is the failure instant (virtual).
	At vclock.Time `json:"at_s"`
	// FailedNode names the node the injector killed.
	FailedNode string `json:"failed_node"`
	// FromStep is the step the job rewound to (0 with Cold).
	FromStep int `json:"from_step"`
	// Cold is true when no complete checkpoint survived and the job
	// restarted from scratch.
	Cold bool `json:"cold,omitempty"`
	// Levels lists the per-rank checkpoint level each rank restored from
	// (scr.BestRestart's choice); empty on cold restarts.
	Levels []string `json:"levels,omitempty"`
	// LostWork is the virtual time between the restored checkpoint's
	// durability (or the attempt's start) and the failure.
	LostWork vclock.Time `json:"lost_work_s"`
	// RestoreTime is the slowest rank's restore I/O in the next attempt.
	RestoreTime vclock.Time `json:"restore_s"`
}

// Outcome summarises a completed resilience scenario.
type Outcome struct {
	// Report is the final (successful) attempt's xPic report; its Makespan
	// is the total virtual time including all failed attempts, lost work,
	// restart overheads and restores.
	Report xpic.Report `json:"report"`
	// Failures counts injected failures.
	Failures int `json:"failures"`
	// Restarts records each failure/restart cycle in order.
	Restarts []Restart `json:"restarts,omitempty"`
	// Checkpoints counts completed collective checkpoints (replays included).
	Checkpoints int `json:"checkpoints"`
	// CheckpointTime is the summed virtual span of those checkpoints.
	CheckpointTime vclock.Time `json:"checkpoint_s"`
	// LostWork is the total recomputed virtual time across failures.
	LostWork vclock.Time `json:"lost_work_s"`
	// RestoreTime is the total restore I/O (slowest rank per restart).
	RestoreTime vclock.Time `json:"restore_s"`
	// RestartOverheadTotal is Params.RestartOverhead times Failures.
	RestartOverheadTotal vclock.Time `json:"restart_overhead_s"`
}

// Run executes the scenario to completion: attempts under failure injection,
// each failure followed by a rewind to scr's best surviving checkpoint.
func Run(params Params) (Outcome, error) {
	if params.Nodes < 1 {
		return Outcome{}, fmt.Errorf("resilience: %d nodes per solver", params.Nodes)
	}
	if params.Mode == xpic.SplitCB && params.SCR.GlobalEvery > 0 {
		return Outcome{}, fmt.Errorf("resilience: the global checkpoint level requires a mono mode")
	}

	clusterN, boosterN := 0, 0
	switch params.Mode {
	case xpic.ClusterOnly:
		clusterN = params.Nodes
	case xpic.BoosterOnly:
		boosterN = params.Nodes
	case xpic.SplitCB:
		clusterN, boosterN = params.Nodes, params.Nodes
	default:
		return Outcome{}, fmt.Errorf("resilience: unknown mode %v", params.Mode)
	}
	sys := core.New(clusterN, boosterN, core.Options{})

	// jobNodes boot the launch; scrNodes maps the global resilience rank —
	// mono world ranks, or booster ranks then cluster ranks in split mode —
	// to its node, for both the SCR manager and the injector's victim pool.
	var jobNodes, scrNodes []*machine.Node
	switch params.Mode {
	case xpic.ClusterOnly:
		jobNodes, _ = sys.ClusterNodes(params.Nodes)
		scrNodes = jobNodes
	case xpic.BoosterOnly:
		jobNodes, _ = sys.BoosterNodes(params.Nodes)
		scrNodes = jobNodes
	case xpic.SplitCB:
		bn, _ := sys.BoosterNodes(params.Nodes)
		cn, _ := sys.ClusterNodes(params.Nodes)
		jobNodes = bn
		scrNodes = append(append([]*machine.Node(nil), bn...), cn...)
	}

	mgr, err := scr.New(params.SCR, sys.Network, sys.FS, scrNodes, sys.NVMe)
	if err != nil {
		return Outcome{}, err
	}
	store := &scrStore{mgr: mgr, curStep: -1}
	inj := psmpi.NewFailureInjector(params.MTBF, params.Seed, params.MaxFailures, scrNodes)
	inj.OnFailure = func(node *machine.Node, at vclock.Time) { mgr.FailNode(node.ID) }

	var out Outcome
	var now vclock.Time
	attemptStart := vclock.Time(0)
	startStep := 0
	for attempt := 0; attempt <= params.maxRestarts(); attempt++ {
		spec := xpic.ResilientSpec{
			Mode:            params.Mode,
			Nodes:           jobNodes,
			RanksPerSolver:  params.Nodes,
			Cfg:             params.Workload,
			StartTime:       now,
			StartStep:       startStep,
			CheckpointEvery: params.CheckpointEvery,
			Failures:        inj,
		}
		if params.CheckpointEvery > 0 || startStep > 0 {
			spec.Store = store
		}
		store.restoreMax = 0
		rep, err := xpic.RunResilient(sys.Runtime, spec)
		if err == nil {
			if n := len(out.Restarts); n > 0 {
				out.Restarts[n-1].RestoreTime = store.restoreMax
				out.RestoreTime += store.restoreMax
			}
			store.flush()
			out.Report = rep
			out.Checkpoints = store.ckptCount
			out.CheckpointTime = store.ckptTime
			out.RestartOverheadTotal = vclock.Time(out.Failures) * params.RestartOverhead
			return out, nil
		}
		nf, ok := psmpi.FailureOf(err)
		if !ok {
			return Outcome{}, err // a genuine application or runtime error
		}
		// Close the attempt's open checkpoint span (possibly cut mid-write by
		// the failure): the replay may re-save the same step number, which
		// must open a fresh span, not extend this one across the failure.
		store.flush()
		if n := len(out.Restarts); n > 0 {
			// The attempt that just died restored first; account its I/O.
			out.Restarts[n-1].RestoreTime = store.restoreMax
			out.RestoreTime += store.restoreMax
		}
		out.Failures++
		restart := Restart{At: nf.At, FailedNode: nf.Node}
		if step, levels, ok := mgr.BestRestart(); ok {
			restart.FromStep = step
			restart.Levels = levelNames(levels)
			// Clamped at zero: a failure striking mid-checkpoint can restore
			// from writes issued before it that become durable just after it
			// (surviving nodes' devices complete asynchronously) — no work
			// is lost then.
			restart.LostWork = vclock.Max(0, nf.At-vclock.Max(store.doneAt(step), attemptStart))
			startStep = step
			store.loadStep, store.loadLevels = step, levels
		} else {
			restart.Cold = true
			restart.LostWork = nf.At - attemptStart
			startStep = 0
		}
		out.Restarts = append(out.Restarts, restart)
		out.LostWork += restart.LostWork
		now = nf.At + params.RestartOverhead
		attemptStart = now
	}
	return Outcome{}, fmt.Errorf("resilience: job did not complete within %d restarts (%d failures)",
		params.maxRestarts(), out.Failures)
}

// levelNames renders per-rank levels for reports.
func levelNames(levels []scr.Level) []string {
	out := make([]string, len(levels))
	for i, l := range levels {
		out[i] = l.String()
	}
	return out
}

// scrStore adapts the SCR manager to xpic.CheckpointStore: storage costs are
// modelled by the manager against the calling rank's clock and charged with
// Elapse, so checkpoint and restore time takes its place in the job's event
// order and makespan.
type scrStore struct {
	mgr        *scr.Manager
	loadStep   int
	loadLevels []scr.Level

	// Checkpoint-span accounting: checkpoints are collective and sequential,
	// so Save calls for a new step close the previous step's span.
	curStep   int
	curBegin  vclock.Time
	curEnd    vclock.Time
	ckptDone  map[int]vclock.Time // step → durable instant (latest completion)
	ckptCount int                 // completed checkpoints (counted at Complete)
	ckptTime  vclock.Time         // summed spans, partial (failure-cut) ones included
	// restoreMax is the slowest rank's restore I/O of the current attempt.
	restoreMax vclock.Time
}

// Save writes one rank's snapshot at the step's planned levels. The
// submit/await split matters here: the durable instant is recorded before
// the rank parks, so a failure that kills the rank mid-checkpoint still
// leaves the span accounting of the work that was issued.
func (st *scrStore) Save(p *psmpi.Proc, rank, step int, data []byte) error {
	levels := st.mgr.BeginCheckpoint(step)
	start := p.Now()
	op, err := st.mgr.SubmitCheckpoint(ioev.Start(p), rank, step, data, levels)
	if err != nil {
		return err
	}
	if step != st.curStep {
		st.flush()
		st.curStep, st.curBegin, st.curEnd = step, start, start
	}
	st.note(step, op.Time())
	ioev.Await(p, op)
	return nil
}

// Complete closes the step's global container (a no-op for local/buddy-only
// plans) and counts the checkpoint: Complete runs exactly once per finished
// collective checkpoint, so a partial one — cut down by a failure — never
// inflates the count.
func (st *scrStore) Complete(p *psmpi.Proc, step int) error {
	op, err := st.mgr.SubmitCompleteGlobal(ioev.Start(p), step, 0)
	if err != nil {
		return err
	}
	st.note(step, op.Time())
	st.ckptCount++
	ioev.Await(p, op)
	return nil
}

// Load restores one rank from the level BestRestart chose for it.
func (st *scrStore) Load(p *psmpi.Proc, rank int) ([]byte, error) {
	start := p.Now()
	data, op, err := st.mgr.SubmitRestore(ioev.Start(p), rank, st.loadStep, st.loadLevels[rank])
	if err != nil {
		return nil, err
	}
	if d := op.Time() - start; d > st.restoreMax {
		st.restoreMax = d
	}
	ioev.Await(p, op)
	return data, nil
}

// note extends the current checkpoint span and the step's durable instant.
func (st *scrStore) note(step int, done vclock.Time) {
	if done > st.curEnd {
		st.curEnd = done
	}
	if st.ckptDone == nil {
		st.ckptDone = map[int]vclock.Time{}
	}
	if done > st.ckptDone[step] {
		st.ckptDone[step] = done
	}
}

// flush folds the open checkpoint span into the time total and closes it.
// Called between checkpoints (Save of a new step) and after every attempt —
// the latter so a replay re-checkpointing the same step number starts a
// fresh span instead of absorbing the failure window into checkpoint time.
func (st *scrStore) flush() {
	if st.curStep >= 0 {
		st.ckptTime += st.curEnd - st.curBegin
		st.curStep = -1
	}
}

// doneAt returns the durable instant of a step's checkpoint (0 if unknown).
func (st *scrStore) doneAt(step int) vclock.Time { return st.ckptDone[step] }
