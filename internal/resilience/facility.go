// Facility-driven rewind: the checkpoint/restart model that internal/sched's
// failure subsystem applies to killed batch jobs. The single-job replay
// driver in this package rewinds one xPic run through the full SCR stack;
// at facility scale (a thousand concurrent jobs, each killed potentially
// several times) the scheduler needs the same semantics as a closed-form
// policy rather than a nested simulation. FacilityCheckpoint is that form:
// periodic checkpoints with a fixed cost, restore on resume, and only
// *completed* checkpoints survive — mirroring scr's sealing rule that a
// checkpoint cut mid-write restores nothing.
package resilience

import (
	"math"

	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/vclock"
)

// RevokeAllocation builds the psmpi revocation that drains a live batch
// allocation at a virtual instant: pass it in LaunchSpec.Revocations and
// any job tree occupying the allocation's nodes at that moment dies with a
// recoverable *psmpi.NodeFailure — the same error an injected node failure
// raises, so one restart loop (Run in this package) handles scheduler
// drains and hardware faults alike. sched stays below psmpi (Allocation
// satisfies psmpi.Placement structurally), so this glue lives here, the
// package that already sits above both.
func RevokeAllocation(a *sched.Allocation, at vclock.Time) psmpi.Revocation {
	return psmpi.Revocation{At: at, Nodes: a.Nodes()}
}

// FacilityCheckpoint implements sched.RewindPolicy: a job checkpoints after
// every Every of useful work, paying Cost per checkpoint, and a resumed
// attempt pays Restore up front before re-executing. The zero value (Every
// 0) is the no-checkpoint policy: every kill restarts the job's work cold.
type FacilityCheckpoint struct {
	// Every is the useful work between checkpoints (0 = no checkpoints).
	Every vclock.Time
	// Cost is the virtual time one checkpoint takes.
	Cost vclock.Time
	// Restore is the virtual time a resumed attempt spends restoring state
	// before any useful work.
	Restore vclock.Time
}

var _ sched.RewindPolicy = FacilityCheckpoint{}

// AttemptRuntime is restore (when resuming) plus the work plus one Cost per
// interior checkpoint boundary. No checkpoint is taken at the very end of
// the attempt — completing the job seals it better than any checkpoint.
func (c FacilityCheckpoint) AttemptRuntime(work vclock.Time, resumed bool) vclock.Time {
	run := work
	if c.Every > 0 && work > 0 {
		n := int(math.Ceil(work.Seconds()/c.Every.Seconds())) - 1
		if n > 0 {
			run += vclock.Time(n) * c.Cost
		}
	}
	if resumed {
		run += c.Restore
	}
	return run
}

// Rewind splits a killed attempt's elapsed time: each fully completed
// checkpoint cycle (Every of work plus its Cost) protects its work; the
// restore head, the partial cycle past the last completed checkpoint, and a
// checkpoint cut mid-write are all lost. Lost is everything that buys the
// next attempt nothing: elapsed minus surviving work minus the cost of the
// checkpoints that protected it.
func (c FacilityCheckpoint) Rewind(elapsed vclock.Time, resumed bool) (surviving, lost vclock.Time) {
	e := elapsed
	if resumed {
		e -= c.Restore
	}
	if c.Every <= 0 || e <= 0 {
		return 0, elapsed
	}
	cycle := (c.Every + c.Cost).Seconds()
	n := vclock.Time(math.Floor(e.Seconds() / cycle))
	surviving = n * c.Every
	lost = elapsed - surviving - n*c.Cost
	return surviving, lost
}
