package resilience

import (
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/vclock"
)

// TestFacilityCheckpointModel pins the closed-form checkpoint/restart
// policy: runtime accounting, the surviving/lost split, and the identity
// surviving-work + checkpoint-cost + lost == elapsed that the facility's
// lost-work metric relies on.
func TestFacilityCheckpointModel(t *testing.T) {
	c := FacilityCheckpoint{Every: 1, Cost: 0.1, Restore: 0.2}

	// Fresh 3s attempt: two interior checkpoints (none at the end).
	if got := c.AttemptRuntime(3, false); !approxTime(got, 3.2) {
		t.Fatalf("AttemptRuntime(3, fresh) = %v, want 3.2", got)
	}
	// Resumed attempts pay the restore head on top.
	if got := c.AttemptRuntime(3, true); !approxTime(got, 3.4) {
		t.Fatalf("AttemptRuntime(3, resumed) = %v, want 3.4", got)
	}
	// Sub-interval work checkpoints nothing.
	if got, want := c.AttemptRuntime(0.5, false), vclock.Time(0.5); got != want {
		t.Fatalf("AttemptRuntime(0.5, fresh) = %v, want %v", got, want)
	}

	// Killed 2.5s into a fresh attempt: cycles of 1.1 (work+cost), so two
	// completed checkpoints protect 2s of work; 0.2 of cost bought them and
	// 0.3 of partial work is lost.
	surv, lost := c.Rewind(2.5, false)
	if !approxTime(surv, 2) {
		t.Fatalf("Rewind(2.5, fresh): surviving %v, want 2", surv)
	}
	if got := surv + lost + vclock.Time(0.1)*2; !approxTime(got, 2.5) {
		t.Fatalf("Rewind identity: surv %v + lost %v + cost != elapsed 2.5", surv, lost)
	}
	// Killed inside the restore head of a resumed attempt: everything lost.
	if surv, lost := c.Rewind(0.1, true); surv != 0 || !approxTime(lost, 0.1) {
		t.Fatalf("Rewind(0.1, resumed) = (%v, %v), want (0, 0.1)", surv, lost)
	}
	// The zero value never salvages anything.
	var cold FacilityCheckpoint
	if surv, lost := cold.Rewind(5, false); surv != 0 || lost != 5 {
		t.Fatalf("cold Rewind(5) = (%v, %v), want (0, 5)", surv, lost)
	}
	if got := cold.AttemptRuntime(5, true); got != 5 {
		t.Fatalf("cold AttemptRuntime(5, resumed) = %v, want 5 (no restore)", got)
	}
}

func approxTime(a, b vclock.Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestRevokeAllocationKillsPlacedJob is the end-to-end drain path: a batch
// allocation hosts a live psmpi job (placed via the allocation, as the
// facility does), the resource manager revokes the allocation mid-run, and
// the job dies with a recoverable NodeFailure naming one of the
// allocation's nodes — the error the restart loop rewinds from.
func TestRevokeAllocationKillsPlacedJob(t *testing.T) {
	sys := machine.New(4, 2)
	m := sched.NewManager(sys)
	alloc, err := m.Alloc(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	at := 5 * vclock.Millisecond
	_, err = rt.Launch(psmpi.LaunchSpec{
		Nodes:       alloc.Nodes(),
		Placement:   alloc,
		Revocations: []psmpi.Revocation{RevokeAllocation(alloc, at)},
		Main: func(p *psmpi.Proc) error {
			for i := 0; i < 100; i++ {
				p.Elapse(vclock.Millisecond)
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("job survived the revocation of its allocation")
	}
	nf, ok := psmpi.FailureOf(err)
	if !ok {
		t.Fatalf("revocation did not surface as a recoverable NodeFailure: %v", err)
	}
	if nf.At != at {
		t.Fatalf("failure at %v, want the revocation instant %v", nf.At, at)
	}
	found := false
	for _, n := range alloc.Nodes() {
		if n.ID == nf.NodeID {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed node %s (id %d) is not part of the revoked allocation", nf.Node, nf.NodeID)
	}
}
