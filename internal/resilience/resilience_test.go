package resilience

import (
	"math"
	"testing"

	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// baseParams is the shared scenario of these tests: a 2-rank quick workload
// checkpointing every 3 steps with a buddy copy on every checkpoint. Seeds
// and MTBFs below are pinned against it: the simulation is deterministic, so
// each seed's failure instant — and hence cold/warm and level selection —
// is a fixed, asserted fact.
func baseParams() Params {
	return Params{
		Mode:            xpic.ClusterOnly,
		Nodes:           2,
		Workload:        xpic.QuickConfig(12),
		CheckpointEvery: 3,
		SCR:             scr.Config{BuddyEvery: 1},
		RestartOverhead: 50 * vclock.Millisecond,
	}
}

// run executes params and fails the test on error.
func run(t *testing.T, p Params) Outcome {
	t.Helper()
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// relClose compares virtual times within a relative tolerance.
func relClose(a, b vclock.Time, tol float64) bool {
	if a == b {
		return true
	}
	ref := math.Max(math.Abs(a.Seconds()), math.Abs(b.Seconds()))
	return math.Abs((a - b).Seconds()) <= tol*ref
}

// TestFailureFreeBaseline checks a no-injection run completes with the
// checkpoint cadence applied and nothing else.
func TestFailureFreeBaseline(t *testing.T) {
	out := run(t, baseParams())
	if out.Failures != 0 || len(out.Restarts) != 0 {
		t.Fatalf("failure-free run recorded failures: %+v", out)
	}
	if out.Checkpoints != 3 { // steps 3, 6, 9 (the final step is not checkpointed)
		t.Fatalf("checkpoints = %d, want 3", out.Checkpoints)
	}
	if out.CheckpointTime <= 0 {
		t.Fatal("checkpointing cost no virtual time")
	}
	if out.LostWork != 0 || out.RestoreTime != 0 {
		t.Fatalf("failure-free run lost work: %+v", out)
	}
}

// TestWarmRestartAccounting is the §III-D acceptance test: a seeded mid-run
// failure increases the makespan by exactly lost work + restart cost
// (restart overhead + restore I/O), up to the µs-scale checkpoint-barrier
// synchronisation the replay does not repeat; the rewind target and per-rank
// levels follow scr's best-surviving-level rules; and the physics is
// bit-identical to the failure-free run.
func TestWarmRestartAccounting(t *testing.T) {
	clean := run(t, baseParams())

	p := baseParams()
	p.MTBF = 60 * vclock.Millisecond
	p.Seed = 11 // pinned: fails mid-run, after the step-6 checkpoint
	p.MaxFailures = 1
	out := run(t, p)

	if out.Failures != 1 || len(out.Restarts) != 1 {
		t.Fatalf("failures = %d, want exactly 1 (%+v)", out.Failures, out.Restarts)
	}
	r := out.Restarts[0]
	if r.Cold {
		t.Fatalf("seed 11 must warm-restart, got cold (%+v)", r)
	}
	if r.FromStep != 6 {
		t.Fatalf("rewound to step %d, want 6 (latest durable checkpoint before %v)", r.FromStep, r.At)
	}
	// Level selection per scr's rules: the failed node's rank lost its local
	// NVMe and restores from its buddy copy; the surviving rank restores
	// locally. (The buddy ring maps rank 1's copy onto rank 0's node.)
	if r.FailedNode != "cn01" {
		t.Fatalf("failed node %s, want cn01 for seed 11", r.FailedNode)
	}
	if len(r.Levels) != 2 || r.Levels[0] != "local" || r.Levels[1] != "buddy" {
		t.Fatalf("restart levels %v, want [local buddy]", r.Levels)
	}
	if r.LostWork <= 0 || r.RestoreTime <= 0 {
		t.Fatalf("warm restart with lost=%v restore=%v", r.LostWork, r.RestoreTime)
	}

	// The makespan grew by exactly the failure's cost.
	delta := out.Report.Makespan - clean.Report.Makespan
	sum := out.LostWork + out.RestoreTime + out.RestartOverheadTotal
	if delta <= 0 {
		t.Fatalf("failure did not increase the makespan (delta %v)", delta)
	}
	if !relClose(delta, sum, 1e-3) {
		t.Fatalf("makespan delta %v != lost+restore+overhead %v", delta, sum)
	}
	// Restart correctness: identical physics.
	if out.Report.Checksum != clean.Report.Checksum ||
		out.Report.KineticEnergy != clean.Report.KineticEnergy {
		t.Fatalf("restart changed the physics:\n clean %+v\n fail  %+v", clean.Report, out.Report)
	}
}

// TestColdRestartAccounting pins a failure before the first checkpoint: no
// level survives for the failed node, the job restarts from step 0, and the
// whole prefix is lost work.
func TestColdRestartAccounting(t *testing.T) {
	clean := run(t, baseParams())

	p := baseParams()
	p.MTBF = 60 * vclock.Millisecond
	p.Seed = 9 // pinned: fails before the first checkpoint completes
	p.MaxFailures = 1
	out := run(t, p)

	if out.Failures != 1 || len(out.Restarts) != 1 {
		t.Fatalf("failures = %d, want 1", out.Failures)
	}
	r := out.Restarts[0]
	if !r.Cold || r.FromStep != 0 || len(r.Levels) != 0 {
		t.Fatalf("want cold restart from 0, got %+v", r)
	}
	if r.LostWork != r.At {
		t.Fatalf("cold restart lost %v, want the whole prefix %v", r.LostWork, r.At)
	}
	delta := out.Report.Makespan - clean.Report.Makespan
	sum := out.LostWork + out.RestoreTime + out.RestartOverheadTotal
	if !relClose(delta, sum, 1e-3) {
		t.Fatalf("makespan delta %v != lost+restore+overhead %v", delta, sum)
	}
	if out.Report.Checksum != clean.Report.Checksum {
		t.Fatal("cold restart changed the physics")
	}
}

// TestGlobalLevelSealing checks that a global checkpoint only counts once
// its SION container is sealed: seed 4's failure rewinds to the last sealed
// step, and the failed rank restores from the global level (its local copy
// died with the node, no buddy cadence is configured).
func TestGlobalLevelSealing(t *testing.T) {
	p := baseParams()
	p.Mode = xpic.BoosterOnly
	p.SCR = scr.Config{GlobalEvery: 1}
	p.MTBF = 30 * vclock.Millisecond
	p.Seed = 4 // pinned: fails around the step-6 checkpoint, before its seal
	p.MaxFailures = 1
	out := run(t, p)

	if out.Failures != 1 {
		t.Fatalf("failures = %d, want 1", out.Failures)
	}
	r := out.Restarts[0]
	if r.Cold || r.FromStep != 3 {
		t.Fatalf("want warm restart from sealed step 3, got %+v", r)
	}
	if r.Levels[0] != "global" || r.Levels[1] != "local" {
		t.Fatalf("levels %v, want [global local] (bn00 died, no buddy cadence)", r.Levels)
	}
	clean := run(t, func() Params { q := p; q.MTBF = 0; q.MaxFailures = 0; return q }())
	if out.Report.Checksum != clean.Report.Checksum {
		t.Fatal("global-level restart changed the physics")
	}
}

// TestSplitModeWarmRestart replays the C+B mode: both solver sides rewind,
// the booster side restoring particles, the cluster side its grid state. A
// split restart additionally pays the MPI_Comm_spawn of the relaunch, so the
// makespan delta exceeds lost+restore+overhead by exactly that.
func TestSplitModeWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("split resilience replay is seconds-scale")
	}
	p := baseParams()
	p.Mode = xpic.SplitCB
	clean := run(t, p)

	p.MTBF = 110 * vclock.Millisecond
	p.Seed = 5 // pinned: bn00 fails after the step-3 checkpoint
	p.MaxFailures = 1
	out := run(t, p)

	if out.Failures != 1 {
		t.Fatalf("failures = %d, want 1", out.Failures)
	}
	r := out.Restarts[0]
	if r.Cold || r.FromStep != 3 || r.FailedNode != "bn00" {
		t.Fatalf("want warm restart from step 3 after bn00 failure, got %+v", r)
	}
	// 4 global ranks: booster 0,1 then cluster 2,3. bn00's rank restores
	// from its buddy copy, everyone else locally.
	want := []string{"buddy", "local", "local", "local"}
	if len(r.Levels) != 4 {
		t.Fatalf("levels %v, want %v", r.Levels, want)
	}
	for i, lv := range want {
		if r.Levels[i] != lv {
			t.Fatalf("levels %v, want %v", r.Levels, want)
		}
	}
	delta := out.Report.Makespan - clean.Report.Makespan
	sum := out.LostWork + out.RestoreTime + out.RestartOverheadTotal +
		psmpi.DefaultConfig().SpawnOverhead // the relaunch re-spawns the cluster side
	if !relClose(delta, sum, 1e-2) {
		t.Fatalf("split makespan delta %v != lost+restore+overhead+respawn %v", delta, sum)
	}
	if out.Report.Checksum != clean.Report.Checksum ||
		out.Report.FieldEnergy != clean.Report.FieldEnergy {
		t.Fatal("split restart changed the physics")
	}
}

// TestRepeatedFailures drives two failures through the replay loop and
// checks the outcome aggregates both restarts.
func TestRepeatedFailures(t *testing.T) {
	p := baseParams()
	p.MTBF = 8 * vclock.Millisecond
	p.RestartOverhead = 10 * vclock.Millisecond
	p.Seed = 2 // pinned: two warm restarts, both from step 6
	p.MaxFailures = 2
	out := run(t, p)

	if out.Failures != 2 || len(out.Restarts) != 2 {
		t.Fatalf("failures = %d, want 2 (%+v)", out.Failures, out.Restarts)
	}
	for i, r := range out.Restarts {
		if r.Cold || r.FromStep != 6 {
			t.Fatalf("restart %d: want warm from step 6, got %+v", i, r)
		}
	}
	if out.RestartOverheadTotal != 20*vclock.Millisecond {
		t.Fatalf("overhead total %v, want 20ms", out.RestartOverheadTotal)
	}
	clean := run(t, baseParams())
	if out.Report.Checksum != clean.Report.Checksum {
		t.Fatal("two restarts changed the physics")
	}
}

// TestRestartBudgetExhausted checks the loop fails loudly when failures
// outpace the budget.
func TestRestartBudgetExhausted(t *testing.T) {
	p := baseParams()
	p.MTBF = vclock.Millisecond // a failure nearly every attempt
	p.Seed = 1
	p.MaxFailures = 1 << 30
	p.MaxRestarts = 3
	if _, err := Run(p); err == nil {
		t.Fatal("unbounded failures completed within 3 restarts")
	}
}

// TestValidation covers the parameter errors.
func TestValidation(t *testing.T) {
	if _, err := Run(Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
	p := baseParams()
	p.Mode = xpic.SplitCB
	p.SCR.GlobalEvery = 1
	if _, err := Run(p); err == nil {
		t.Fatal("split mode with global level accepted")
	}
}
