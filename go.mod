module clusterbooster

go 1.24
