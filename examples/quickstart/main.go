// Quickstart: boot the DEEP-ER prototype, inspect it, and run the paper's
// offload pattern (Fig. 4) — a job on the Cluster spawns MPI processes onto
// the Booster and talks to them through the inter-communicator.
package main

import (
	"fmt"
	"log"

	"clusterbooster/internal/core"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

func main() {
	// The DEEP-ER prototype: 16 Cluster nodes (Haswell) + 8 Booster nodes
	// (KNL) on one EXTOLL-like fabric, with NVMe, NAM and BeeGFS attached.
	sys := core.Prototype()
	fmt.Printf("booted %d cluster + %d booster nodes, %d NVMe devices, %d NAM cards\n",
		sys.Machine.NodeCount(machine.Cluster),
		sys.Machine.NodeCount(machine.Booster),
		len(sys.NVMe), len(sys.NAM))

	// Install the "binary" the Booster side will run.
	sys.Runtime.Register("hello_booster", func(p *psmpi.Proc) error {
		parent := p.Parent()
		buf := make([]float64, 1)
		p.RecvF64(parent, 0, 1, buf)
		fmt.Printf("  booster rank %d on %s got %.0f from the cluster (at virtual t=%v)\n",
			p.Rank(), p.Node().Name(), buf[0], p.Now())
		p.SendF64(parent, 0, 2, []float64{buf[0] * 10})
		return nil
	})

	// Launch a 2-rank job on the Cluster; rank 0 coordinates the spawn.
	nodes, err := sys.ClusterNodes(2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Runtime.Launch(psmpi.LaunchSpec{
		Nodes: nodes,
		Main: func(p *psmpi.Proc) error {
			// MPI_Comm_spawn: 3 children on the Booster (Fig. 4).
			inter, err := p.Spawn(p.World(), psmpi.SpawnSpec{
				Binary: "hello_booster", Procs: 3, Module: machine.Booster,
			})
			if err != nil {
				return err
			}
			if p.Rank() != 0 {
				return nil
			}
			for child := 0; child < inter.RemoteSize(); child++ {
				p.SendF64(inter, child, 1, []float64{float64(child + 1)})
			}
			sum := 0.0
			for child := 0; child < inter.RemoteSize(); child++ {
				buf := make([]float64, 1)
				p.RecvF64(inter, child, 2, buf)
				sum += buf[0]
			}
			fmt.Printf("cluster rank 0 collected %.0f from the booster children\n", sum)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished at virtual time %v\n", res.Makespan)
}
