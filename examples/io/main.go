// IO: the DEEP-ER I/O stack of §III-C, driven as a real MPI-style job on
// the discrete-event kernel. Sixteen ranks write task-local output through
// SIONlib into one container on BeeGFS and read it back verified; then a
// BeeOND cache domain on node-local NVMe absorbs a checkpoint burst in
// asynchronous and synchronous mode, showing why the async return is the
// one applications see.
package main

import (
	"bytes"
	"fmt"
	"log"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/core"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sion"
	"clusterbooster/internal/vclock"
)

func main() {
	sys := core.Prototype()

	const ntasks = 16
	nodes, err := sys.ClusterNodes(ntasks)
	if err != nil {
		log.Fatal(err)
	}

	// --- SIONlib: task-local I/O concentrated into one container file ---
	// Rank 0 opens the container before the job; every rank streams its own
	// 1 MiB payload, a barrier makes all writes visible, and rank 0 seals
	// the container (SIONlib's collective close).
	w, _, err := sion.SubmitCreate(sys.FS, "/data/moments.sion", ntasks, 64<<10, nodes[0], ioev.At(0))
	if err != nil {
		log.Fatal(err)
	}
	payloads := make([][]byte, ntasks)
	for task := range payloads {
		payloads[task] = bytes.Repeat([]byte{byte('A' + task)}, 1<<20)
	}
	var tClose, tRead vclock.Time
	var got []byte
	res, err := sys.Runtime.Launch(psmpi.LaunchSpec{Nodes: nodes, Main: func(p *psmpi.Proc) error {
		rank := p.Rank()
		if err := w.WriteTask(p, rank, payloads[rank]); err != nil {
			return err
		}
		p.Barrier(p.World())
		if rank == 0 {
			if err := w.Close(p); err != nil {
				return err
			}
			tClose = p.Now()
		}
		p.Barrier(p.World())
		if rank == 3 {
			// Read back another rank's stream from a different node.
			r, err := sion.OpenRead(p, sys.FS, "/data/moments.sion")
			if err != nil {
				return err
			}
			got, err = r.ReadTask(p, 7)
			if err != nil {
				return err
			}
			tRead = p.Now()
		}
		return nil
	}})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payloads[7]) {
		log.Fatal("verification failed: task 7 read back differs")
	}
	fmt.Printf("SIONlib: %d task streams → 1 container, %d MiB sealed at %v\n",
		ntasks, ntasks, tClose)
	fmt.Printf("read back task 7 (%d bytes) from another node, verified, at %v (job makespan %v)\n",
		len(got), tRead, res.Makespan)

	// --- BeeOND cache domain: async NVMe cache in front of the global FS ---
	cacheAsync := beegfs.NewCache(sys.FS, beegfs.CacheAsync, sys.NVMe)
	cacheSync := beegfs.NewCache(sys.FS, beegfs.CacheSync, sys.NVMe)
	burst := make([]byte, 128<<20) // a 128 MiB checkpoint burst

	var tAsync, tSync, tDrain vclock.Time
	_, err = sys.Runtime.Launch(psmpi.LaunchSpec{Nodes: nodes[:2], Main: func(p *psmpi.Proc) error {
		switch p.Rank() {
		case 0:
			if err := cacheAsync.Write(p, "/ckpt/async.bin", burst); err != nil {
				return err
			}
			tAsync = p.Now()
			cacheAsync.Drain(p)
			tDrain = p.Now()
		case 1:
			if err := cacheSync.Write(p, "/ckpt/sync.bin", burst); err != nil {
				return err
			}
			tSync = p.Now()
		}
		return nil
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BeeOND 128 MiB burst: async (to NVMe) %v vs sync (write-through) %v → %.1f× faster return\n",
		tAsync, tSync, tSync.Seconds()/tAsync.Seconds())
	fmt.Printf("async data safe in the global FS after drain at %v\n", tDrain)
}
