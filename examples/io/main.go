// IO: the DEEP-ER I/O stack of §III-C. Sixteen tasks write task-local output
// through SIONlib into one container on BeeGFS, a BeeOND cache domain on
// node-local NVMe absorbs a checkpoint burst asynchronously, and the data is
// read back and verified.
package main

import (
	"bytes"
	"fmt"
	"log"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/core"
	"clusterbooster/internal/sion"
	"clusterbooster/internal/vclock"
)

func main() {
	sys := core.Prototype()

	// --- SIONlib: task-local I/O concentrated into one container file ---
	const ntasks = 16
	nodes, err := sys.ClusterNodes(16)
	if err != nil {
		log.Fatal(err)
	}
	w, _, err := sion.Create(sys.FS, "/data/moments.sion", ntasks, 64<<10, nodes[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	var tWrite vclock.Time
	payloads := make([][]byte, ntasks)
	for task := 0; task < ntasks; task++ {
		payloads[task] = bytes.Repeat([]byte{byte('A' + task)}, 1<<20) // 1 MiB each
		done, err := w.WriteTask(task, payloads[task], nodes[task], 0)
		if err != nil {
			log.Fatal(err)
		}
		tWrite = vclock.Max(tWrite, done)
	}
	tClose, err := w.Close(nodes[0], tWrite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIONlib: %d task streams → 1 container, %d MiB in %v\n",
		ntasks, ntasks, tClose)

	// Read back and verify.
	r, _, err := sion.OpenRead(sys.FS, "/data/moments.sion", nodes[3], tClose)
	if err != nil {
		log.Fatal(err)
	}
	got, tRead, err := r.ReadTask(7, nodes[3], tClose)
	if err != nil || !bytes.Equal(got, payloads[7]) {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("read back task 7 (%d bytes) from another node, verified, at %v\n", len(got), tRead)

	// --- BeeOND cache domain: async NVMe cache in front of the global FS ---
	cacheAsync := beegfs.NewCache(sys.FS, beegfs.CacheAsync, sys.NVMe)
	cacheSync := beegfs.NewCache(sys.FS, beegfs.CacheSync, sys.NVMe)
	burst := make([]byte, 128<<20) // a 128 MiB checkpoint burst

	tAsync, err := cacheAsync.Write("/ckpt/async.bin", burst, nodes[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	tSync, err := cacheSync.Write("/ckpt/sync.bin", burst, nodes[1], 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BeeOND 128 MiB burst: async (to NVMe) %v vs sync (write-through) %v → %.1f× faster return\n",
		tAsync, tSync, tSync.Seconds()/tAsync.Seconds())
	drained := cacheAsync.Drain(tAsync)
	fmt.Printf("async data safe in the global FS after drain at %v\n", drained)
}
