// Resilience: the DEEP-ER checkpoint/restart stack of §III-D, live on the
// discrete-event kernel. A four-rank xPic job checkpoints through SCR every
// few steps (local NVMe plus a buddy copy via SIONlib), a seeded node
// failure fires as a kernel event mid-run and tears the job down, and the
// replay driver rewinds to the best surviving checkpoint level and
// re-executes — so the reported makespan contains the failure-free work plus
// the lost work, the restart overhead and the restore I/O, exactly as the
// paper's SCR extension trades them. The Young/Daly optimal interval is
// computed from the prototype's failure model alongside.
package main

import (
	"fmt"
	"log"

	"clusterbooster/internal/resilience"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

func main() {
	params := resilience.Params{
		Mode:            xpic.ClusterOnly,
		Nodes:           4,
		Workload:        xpic.QuickConfig(24),
		CheckpointEvery: 4,
		SCR:             scr.Config{BuddyEvery: 1},
		RestartOverhead: 2 * vclock.Millisecond,
	}

	// Failure-free baseline first: what the job costs when nothing breaks.
	clean, err := resilience.Run(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free: makespan %v, %d checkpoints costing %v\n",
		clean.Report.Makespan, clean.Checkpoints, clean.CheckpointTime)

	// Checkpoint planning from the failure model (§III-D: SCR extended to
	// decide where and how often checkpoints happen). The MTBF is in virtual
	// seconds, scaled to this miniature workload.
	mtbf := 16 * vclock.Millisecond
	perCkpt := clean.CheckpointTime / vclock.Time(clean.Checkpoints)
	fmt.Printf("failure model: per-node MTBF %v, system MTBF %v over %d nodes\n",
		mtbf, mtbf/vclock.Time(params.Nodes), params.Nodes)
	fmt.Printf("Young/Daly optimal interval for a %v checkpoint: %v\n\n",
		perCkpt, scr.OptimalInterval(perCkpt, mtbf/vclock.Time(params.Nodes)))

	// Now the same job under live failure injection: a node dies mid-run as
	// a kernel event, every rank is torn down, and the job rewinds to the
	// best surviving checkpoint level.
	params.MTBF = mtbf
	params.Seed = 6
	params.MaxFailures = 1
	out, err := resilience.Run(params)
	if err != nil {
		log.Fatal(err)
	}
	if out.Failures == 0 {
		log.Fatal("the seeded failure never fired — resiliency untested")
	}
	for _, r := range out.Restarts {
		if r.Cold {
			fmt.Printf("node %s failed at %v — no surviving checkpoint, cold restart (lost %v)\n",
				r.FailedNode, r.At, r.LostWork)
			continue
		}
		fmt.Printf("node %s failed at %v — restarted from step %d (lost %v, restore %v)\n",
			r.FailedNode, r.At, r.FromStep, r.LostWork, r.RestoreTime)
		for rank, lv := range r.Levels {
			fmt.Printf("  rank %d restored from %-6s level\n", rank, lv)
		}
	}
	fmt.Printf("\nwith failure: makespan %v (%.1f%% of failure-free performance retained)\n",
		out.Report.Makespan, 100*clean.Report.Makespan.Seconds()/out.Report.Makespan.Seconds())
	fmt.Printf("accounting: lost work %v + restart overhead %v + restore %v\n",
		out.LostWork, out.RestartOverheadTotal, out.RestoreTime)
	if out.Report.Checksum != clean.Report.Checksum {
		log.Fatal("restart changed the physics — restart correctness violated")
	}
	fmt.Println("physics checksum identical to the failure-free run — restart is exact")
}
