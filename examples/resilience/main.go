// Resilience: the DEEP-ER checkpoint/restart stack of §III-D. A four-rank
// job checkpoints through SCR's three levels (NVMe-local, buddy copy via
// SIONlib, global SION container on BeeGFS), a node failure is injected, and
// the job restarts from the best surviving level. The Young/Daly optimal
// interval is computed from the prototype's failure model.
package main

import (
	"fmt"
	"log"

	"clusterbooster/internal/core"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/vclock"
)

func main() {
	sys := core.Prototype()
	nodes, err := sys.ClusterNodes(4)
	if err != nil {
		log.Fatal(err)
	}

	mgr, err := scr.New(scr.Config{
		BuddyEvery:  2,
		GlobalEvery: 4,
		NodeMTBF:    12 * 3600 * vclock.Second,
	}, sys.Network, sys.FS, nodes, sys.NVMe)
	if err != nil {
		log.Fatal(err)
	}

	// The application state of each rank: 64 MiB.
	state := make([]byte, 64<<20)

	// Checkpoint planning from the failure model (§III-D: SCR extended to
	// decide where and how often checkpoints happen).
	fmt.Printf("system MTBF with 4 nodes: %v\n", mgr.SystemMTBF())

	var now vclock.Time
	for step := 10; step <= 40; step += 10 {
		levels := mgr.BeginCheckpoint(step)
		var done vclock.Time
		for rank := 0; rank < mgr.Ranks(); rank++ {
			t, err := mgr.Checkpoint(rank, step, state, levels, now)
			if err != nil {
				log.Fatal(err)
			}
			done = vclock.Max(done, t)
		}
		if t, err := mgr.CompleteGlobal(step, 0, done); err == nil {
			done = vclock.Max(done, t)
		}
		fmt.Printf("step %2d: levels %v, checkpoint cost %v\n", step, levels, done-now)
		// Daly interval for this checkpoint cost:
		fmt.Printf("         optimal interval for this cost: %v\n",
			scr.OptimalInterval(done-now, mgr.SystemMTBF()))
		now = done + 5*vclock.Second // 5 s of "computation" between checkpoints
	}

	// Disaster: the node of rank 1 dies, taking its NVMe (local checkpoints
	// and the buddy copies it held) with it.
	fmt.Printf("\ninjecting failure of %s...\n", nodes[1].Name())
	mgr.FailNode(nodes[1].ID)

	step, levels, ok := mgr.BestRestart()
	if !ok {
		log.Fatal("no recoverable checkpoint — resiliency failed")
	}
	fmt.Printf("restarting from step %d:\n", step)
	var restartCost vclock.Time
	for rank := 0; rank < mgr.Ranks(); rank++ {
		data, t, err := mgr.Restore(rank, step, levels[rank], now)
		if err != nil {
			log.Fatal(err)
		}
		if len(data) != len(state) {
			log.Fatalf("rank %d restored %d bytes, want %d", rank, len(data), len(state))
		}
		if t-now > restartCost {
			restartCost = t - now
		}
		fmt.Printf("  rank %d restored from %-6v level\n", rank, levels[rank])
	}
	fmt.Printf("restart complete in %v — work after step %d is lost, everything before survives\n",
		restartCost, step)
}
