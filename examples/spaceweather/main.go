// Spaceweather: the paper's use case (§IV). Runs the xPic particle-in-cell
// space-weather simulation in all three scenarios of Fig. 7 — Cluster-only,
// Booster-only, and the Cluster-Booster split in which the field solver runs
// on Haswell nodes and the particle solver on KNL nodes — and reports the
// per-solver times and partitioning gains.
//
// The workload is a reduced version of Table II so the example finishes in
// seconds; run cmd/deepsim fig7 for the full experiment.
package main

import (
	"fmt"
	"log"

	"clusterbooster/internal/core"
	"clusterbooster/internal/xpic"
)

func main() {
	cfg := xpic.Table2Config()
	cfg.Steps = 90          // reduced from 900
	cfg.ParticleScale = 512 // fewer macro-particles, same virtual cost
	cfg.Verbose = false

	fmt.Println("xPic space-weather benchmark (reduced Table II workload)")
	fmt.Printf("grid %dx%d, %d particles/cell, %d steps\n\n",
		cfg.NX, cfg.NY, cfg.PPC, cfg.Steps)

	run := func(name string, f func(*core.System) (xpic.Report, error)) xpic.Report {
		sys := core.New(1, 1, core.Options{WithoutStorage: true})
		rep, err := f(sys)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(rep)
		return rep
	}

	c := run("cluster", func(s *core.System) (xpic.Report, error) { return s.RunXPicCluster(1, cfg) })
	b := run("booster", func(s *core.System) (xpic.Report, error) { return s.RunXPicBooster(1, cfg) })
	cb := run("split", func(s *core.System) (xpic.Report, error) { return s.RunXPicSplit(1, cfg) })

	fmt.Printf("\nfield solver is %.1f× faster on the Cluster (paper: 6×)\n",
		b.FieldTime.Seconds()/c.FieldTime.Seconds())
	fmt.Printf("particle solver is %.2f× faster on the Booster (paper: 1.35×)\n",
		c.ParticleTime.Seconds()/b.ParticleTime.Seconds())
	fmt.Printf("C+B mode is %.2f× faster than Cluster-only (paper: 1.28×)\n",
		c.Makespan.Seconds()/cb.Makespan.Seconds())
	fmt.Printf("C+B mode is %.2f× faster than Booster-only (paper: 1.21×)\n",
		b.Makespan.Seconds()/cb.Makespan.Seconds())
	fmt.Printf("physics identical in all modes: checksum %.6g (cluster) vs %.6g (C+B)\n",
		c.Checksum, cb.Checksum)
}
