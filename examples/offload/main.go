// Offload: the OmpSs-style task offload of §III-B. A task graph annotated
// with data dependencies runs on a Cluster rank; the heavy, vector-friendly
// kernel is annotated for offload and executed on a Booster worker through
// real MPI traffic on the spawn inter-communicator — the second porting path
// the paper describes (xPic chose raw MPI_Comm_spawn; this is the pragma
// path).
package main

import (
	"fmt"
	"log"

	"clusterbooster/internal/core"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/omps"
	"clusterbooster/internal/psmpi"
)

func main() {
	sys := core.New(2, 2, core.Options{WithoutStorage: true})
	sys.Runtime.Register("omps_worker", omps.WorkerMain)

	nodes, err := sys.ClusterNodes(1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Runtime.Launch(psmpi.LaunchSpec{
		Nodes: nodes,
		Main: func(p *psmpi.Proc) error {
			// Spawn one offload worker on the Booster.
			inter, err := p.Spawn(p.World(), psmpi.SpawnSpec{
				Binary: "omps_worker", Procs: 1, Module: machine.Booster,
			})
			if err != nil {
				return err
			}

			// Build the annotated task graph:
			//   prepare(out data) → kernel(inout data, offloaded) → reduce(in data)
			g := omps.NewGraph(p, 0)
			data := make([]float64, 1<<16)
			g.Add("prepare", []omps.Dep{{Name: "data", Mode: omps.Out}},
				machine.Work{Class: machine.KernelStream, Bytes: float64(8 * len(data))},
				func() {
					for i := range data {
						data[i] = float64(i % 7)
					}
				})
			// The heavy particle-class kernel: 30 GFlop — worth shipping to
			// the Booster (1.35× faster there).
			g.AddOffload("kernel", []omps.Dep{{Name: "data", Mode: omps.InOut}},
				machine.Work{Class: machine.KernelParticle, Flops: 3e10},
				8*len(data), 8*len(data),
				func() {
					for i := range data {
						data[i] *= 2
					}
				})
			var sum float64
			g.Add("reduce", []omps.Dep{{Name: "data", Mode: omps.In}},
				machine.Work{Class: machine.KernelStream, Bytes: float64(8 * len(data))},
				func() {
					for _, v := range data {
						sum += v
					}
				})

			r, err := g.RunWithOffload(inter, 0)
			if err != nil {
				return err
			}
			omps.StopWorker(p, inter, 0)
			fmt.Printf("graph done: %d tasks (%d offloaded), makespan %v, critical path %v\n",
				r.Executed, r.Offloaded, r.Makespan, r.CriticalPath)
			fmt.Printf("result checksum: %.0f\n", sum)

			// For comparison: the same graph fully local.
			g2 := omps.NewGraph(p, 0)
			g2.Add("kernel-local", nil, machine.Work{Class: machine.KernelParticle, Flops: 3e10}, nil)
			r2, err := g2.Run()
			if err != nil {
				return err
			}
			fmt.Printf("offloaded kernel: %v vs local execution: %v (Booster wins on this class)\n",
				r.Makespan, r2.Makespan)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual job time: %v\n", res.Makespan)
}
