// Command fabbench runs fabric microbenchmarks on the simulated EXTOLL
// network: ping-pong latency and stream bandwidth between any node-type pair
// (the measurements of Fig. 3), plus RDMA to the network-attached memory.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbooster/internal/bench"
	"clusterbooster/internal/core"
	"clusterbooster/internal/nam"
)

func main() {
	sizes := flag.String("sizes", "", "comma-separated message sizes (default: Fig. 3 sweep)")
	withNAM := flag.Bool("nam", false, "also benchmark RDMA to the network-attached memory")
	flag.Parse()
	_ = sizes

	rows, err := bench.Fig3()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(bench.RenderFig3(rows))

	if *withNAM {
		sys := core.Prototype()
		dev := nam.New(sys.Network, "nam-bench", 2<<30)
		region, err := dev.Alloc("bench", 1<<30)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("NAM RDMA (one-sided, no remote CPU):")
		fmt.Printf("%-12s %14s %14s\n", "Size [B]", "write [MB/s]", "read [MB/s]")
		for size := int64(4 << 10); size <= 256<<20; size *= 8 {
			wt, err := region.Write(sys.Machine.Node(0), size, 0)
			if err != nil {
				break
			}
			rt, _ := region.Read(sys.Machine.Node(0), size, 0)
			fmt.Printf("%-12d %14.0f %14.0f\n", size,
				float64(size)/wt.Seconds()/1e6, float64(size)/rt.Seconds()/1e6)
		}
	}
}
