// Command fabbench runs fabric microbenchmarks on the simulated EXTOLL
// network: ping-pong latency and stream bandwidth between every node-type
// pair (the measurements of Fig. 3), driven through the sweep engine, plus
// RDMA to the network-attached memory.
//
// Usage:
//
//	fabbench [-sizes 64,4096,1048576] [-workers N] [-json|-csv] [-nam]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"clusterbooster/internal/bench"
	"clusterbooster/internal/core"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/nam"
	"clusterbooster/internal/sweep"
)

func main() {
	sizesFlag := flag.String("sizes", "", "comma-separated message sizes (default: Fig. 3 sweep)")
	workers := flag.Int("workers", 0, "sweep worker pool bound (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit raw sweep results as JSON")
	asCSV := flag.Bool("csv", false, "emit raw sweep results as CSV")
	withNAM := flag.Bool("nam", false, "also benchmark RDMA to the network-attached memory")
	flag.Parse()

	sizes := bench.Fig3Sizes()
	if *sizesFlag != "" {
		var err error
		if sizes, err = parseSizes(*sizesFlag); err != nil {
			fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
			os.Exit(2)
		}
	}

	rs := sweep.Run(bench.Fig3Scenarios(sizes), sweep.Options{Workers: *workers})
	switch {
	case *asJSON:
		if err := rs.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
			os.Exit(1)
		}
	case *asCSV:
		if err := rs.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
			os.Exit(1)
		}
	default:
		rows, err := bench.Fig3RowsFrom(sizes, rs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.RenderFig3(rows))
	}
	if rs.Failures > 0 {
		os.Exit(1)
	}

	if *withNAM && (*asJSON || *asCSV) {
		// The NAM section is a human-readable table and would corrupt the
		// machine-readable stdout document.
		fmt.Fprintln(os.Stderr, "fabbench: -nam is text-mode only, ignored with -json/-csv")
		*withNAM = false
	}
	if *withNAM {
		sys := core.Prototype()
		dev := nam.New(sys.Network, "nam-bench", 2<<30)
		region, err := dev.Alloc("bench", 1<<30)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("NAM RDMA (one-sided, no remote CPU):")
		fmt.Printf("%-12s %14s %14s\n", "Size [B]", "write [MB/s]", "read [MB/s]")
		for size := int64(4 << 10); size <= 256<<20; size *= 8 {
			// Submitted, not awaited: the table prices each transfer from
			// instant 0 without an actor clock in the way.
			wop, err := region.SubmitWrite(ioev.At(0), sys.Machine.Node(0), size)
			if err != nil {
				break
			}
			rop, _ := region.SubmitRead(ioev.At(0), sys.Machine.Node(0), size)
			fmt.Printf("%-12d %14.0f %14.0f\n", size,
				float64(size)/wop.Time().Seconds()/1e6, float64(size)/rop.Time().Seconds()/1e6)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad message size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return out, nil
}
