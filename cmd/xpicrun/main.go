// Command xpicrun runs the xPic space-weather application on a simulated
// Cluster-Booster system in any of the three scenarios of the paper.
//
// Usage:
//
//	xpicrun -mode cluster|booster|split -nodes N [-json] [workload flags]
//
// Example (the paper's Fig. 7 C+B point):
//
//	xpicrun -mode split -nodes 1
//
// With -json the run is wrapped in the sweep engine's result format, so a
// single run and a full `deepsim -sweep` are post-processable by the same
// tooling.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbooster/internal/core"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/xpic"
)

func main() {
	mode := flag.String("mode", "split", "cluster, booster, or split")
	nodes := flag.Int("nodes", 1, "nodes per solver")
	steps := flag.Int("steps", 0, "time steps (default: Table II workload)")
	nx := flag.Int("nx", 0, "grid cells in x")
	ny := flag.Int("ny", 0, "grid cells in y")
	ppc := flag.Int("ppc", 0, "particles per cell")
	scale := flag.Int("scale", 0, "particle fidelity divisor")
	asJSON := flag.Bool("json", false, "emit the run as a sweep result set (JSON)")
	verbose := flag.Bool("v", false, "per-step diagnostics")
	flag.Parse()

	cfg := xpic.Table2Config()
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *nx > 0 {
		cfg.NX = *nx
	}
	if *ny > 0 {
		cfg.NY = *ny
	}
	if *ppc > 0 {
		cfg.PPC = *ppc
	}
	if *scale > 0 {
		cfg.ParticleScale = *scale
	}
	cfg.Verbose = *verbose

	var xmode xpic.Mode
	switch *mode {
	case "cluster":
		xmode = xpic.ClusterOnly
	case "booster":
		xmode = xpic.BoosterOnly
	case "split":
		xmode = xpic.SplitCB
	default:
		fmt.Fprintf(os.Stderr, "xpicrun: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *asJSON {
		// Per-step diagnostics write to stdout and would corrupt the JSON
		// document.
		cfg.Verbose = false
		point := sweep.XPicPoint{NodesPerSolver: *nodes, Mode: xmode, Workload: cfg}
		name := fmt.Sprintf("xpicrun/n=%d/%v", *nodes, xmode)
		rs := sweep.Run([]sweep.Scenario{point.Scenario(name)}, sweep.Options{Workers: 1})
		if err := rs.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "xpicrun: %v\n", err)
			os.Exit(1)
		}
		if rs.Failures > 0 {
			os.Exit(1)
		}
		return
	}

	sys := core.New(*nodes, *nodes, core.Options{WithoutStorage: true})
	rep, err := sys.RunXPic(xmode, *nodes, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpicrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("field energy %.6g, kinetic energy %.6g, CG iterations %d\n",
		rep.FieldEnergy, rep.KineticEnergy, rep.CGIters)
}
