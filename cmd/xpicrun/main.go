// Command xpicrun runs the xPic space-weather application on a simulated
// Cluster-Booster system in any of the three scenarios of the paper.
//
// Usage:
//
//	xpicrun -mode cluster|booster|split -nodes N [workload flags]
//
// Example (the paper's Fig. 7 C+B point):
//
//	xpicrun -mode split -nodes 1
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbooster/internal/core"
	"clusterbooster/internal/xpic"
)

func main() {
	mode := flag.String("mode", "split", "cluster, booster, or split")
	nodes := flag.Int("nodes", 1, "nodes per solver")
	steps := flag.Int("steps", 0, "time steps (default: Table II workload)")
	nx := flag.Int("nx", 0, "grid cells in x")
	ny := flag.Int("ny", 0, "grid cells in y")
	ppc := flag.Int("ppc", 0, "particles per cell")
	scale := flag.Int("scale", 0, "particle fidelity divisor")
	verbose := flag.Bool("v", false, "per-step diagnostics")
	flag.Parse()

	cfg := xpic.Table2Config()
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *nx > 0 {
		cfg.NX = *nx
	}
	if *ny > 0 {
		cfg.NY = *ny
	}
	if *ppc > 0 {
		cfg.PPC = *ppc
	}
	if *scale > 0 {
		cfg.ParticleScale = *scale
	}
	cfg.Verbose = *verbose

	sys := core.New(*nodes, *nodes, core.Options{WithoutStorage: true})
	var rep xpic.Report
	var err error
	switch *mode {
	case "cluster":
		rep, err = sys.RunXPicCluster(*nodes, cfg)
	case "booster":
		rep, err = sys.RunXPicBooster(*nodes, cfg)
	case "split":
		rep, err = sys.RunXPicSplit(*nodes, cfg)
	default:
		fmt.Fprintf(os.Stderr, "xpicrun: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpicrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("field energy %.6g, kinetic energy %.6g, CG iterations %d\n",
		rep.FieldEnergy, rep.KineticEnergy, rep.CGIters)
}
