// Command deepsim regenerates the tables and figures of "Application
// performance on a Cluster-Booster system" on the simulated DEEP-ER
// prototype.
//
// Usage:
//
//	deepsim [flags] table1|table2|fig3|fig7|fig8|all
//
// Flags:
//
//	-quick     run reduced workloads (seconds instead of minutes)
//	-steps N   override the xPic step count
//	-scale K   override the particle fidelity divisor
//
// The output prints the measured series next to the paper's reference
// values; EXPERIMENTS.md records a full run.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbooster/internal/bench"
	"clusterbooster/internal/xpic"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	steps := flag.Int("steps", 0, "override xPic step count")
	scale := flag.Int("scale", 0, "override particle fidelity divisor")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deepsim [flags] table1|table2|fig3|fig7|fig8|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := xpic.Table2Config()
	if *quick {
		cfg.Steps = 60
		cfg.ParticleScale = 512
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *scale > 0 {
		cfg.ParticleScale = *scale
	}

	target := flag.Arg(0)
	run := func(name string, fn func() error) {
		if target != name && target != "all" {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		fmt.Println(bench.RenderTable1())
		return nil
	})
	run("table2", func() error {
		fmt.Println(bench.Table2(cfg))
		return nil
	})
	run("fig3", func() error {
		rows, err := bench.Fig3()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig3(rows))
		return nil
	})
	run("fig7", func() error {
		res, err := bench.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig7(res))
		return nil
	})
	run("fig8", func() error {
		res, err := bench.Fig8(cfg, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig8(res))
		return nil
	})

	switch target {
	case "table1", "table2", "fig3", "fig7", "fig8", "all":
	default:
		flag.Usage()
		os.Exit(2)
	}
}
