// Command deepsim regenerates the tables and figures of "Application
// performance on a Cluster-Booster system" on the simulated DEEP-ER
// prototype, and runs declarative scenario sweeps over the evaluation space.
//
// Usage:
//
//	deepsim [flags] table1|table2|fig3|fig7|fig8|all
//	deepsim -sweep [flags]
//
// Flags:
//
//	-quick     run reduced workloads (seconds instead of minutes)
//	-steps N   override the xPic step count
//	-scale K   override the particle fidelity divisor
//	-sweep     run the paper's full evaluation grid through the sweep engine
//	-scr       add the SCR checkpoint-level axis to the sweep
//	-workers N bound the sweep worker pool (0 = GOMAXPROCS)
//	-json      emit sweep results as JSON instead of text
//	-csv       emit sweep results as CSV instead of text
//	-v         print per-scenario progress to stderr
//
// The figure targets print the measured series next to the paper's reference
// values; EXPERIMENTS.md records a full run. The sweep output is
// deterministic: the same grid always produces byte-identical JSON,
// regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbooster/internal/bench"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/xpic"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	steps := flag.Int("steps", 0, "override xPic step count")
	scale := flag.Int("scale", 0, "override particle fidelity divisor")
	doSweep := flag.Bool("sweep", false, "run the paper's evaluation grid through the sweep engine")
	withSCR := flag.Bool("scr", false, "add the SCR checkpoint-level axis to the sweep")
	workers := flag.Int("workers", 0, "sweep worker pool bound (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit sweep results as JSON")
	asCSV := flag.Bool("csv", false, "emit sweep results as CSV")
	verbose := flag.Bool("v", false, "per-scenario progress on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deepsim [flags] table1|table2|fig3|fig7|fig8|all\n")
		fmt.Fprintf(os.Stderr, "       deepsim -sweep [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := xpic.Table2Config()
	if *quick {
		cfg.Steps = 60
		cfg.ParticleScale = 512
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *scale > 0 {
		cfg.ParticleScale = *scale
	}

	if *doSweep {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(runSweep(cfg, *withSCR, *workers, *asJSON, *asCSV, *verbose))
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	for name, set := range map[string]bool{
		"-json": *asJSON, "-csv": *asCSV, "-scr": *withSCR, "-v": *verbose,
	} {
		if set {
			fmt.Fprintf(os.Stderr, "deepsim: %s requires -sweep\n", name)
			os.Exit(2)
		}
	}

	target := flag.Arg(0)
	run := func(name string, fn func() error) {
		if target != name && target != "all" {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		fmt.Println(bench.RenderTable1())
		return nil
	})
	run("table2", func() error {
		fmt.Println(bench.Table2(cfg))
		return nil
	})
	run("fig3", func() error {
		rows, err := bench.Fig3Sweep(bench.Fig3Sizes(), *workers)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig3(rows))
		return nil
	})
	run("fig7", func() error {
		res, err := bench.Fig7Sweep(cfg, *workers)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig7(res))
		return nil
	})
	run("fig8", func() error {
		res, err := bench.Fig8Sweep(cfg, []int{1, 2, 4, 8}, *workers)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig8(res))
		return nil
	})

	switch target {
	case "table1", "table2", "fig3", "fig7", "fig8", "all":
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSweep expands the paper grid and executes it on the worker pool.
func runSweep(cfg xpic.Config, withSCR bool, workers int, asJSON, asCSV, verbose bool) int {
	grid := bench.PaperGrid(cfg, withSCR)
	scenarios, err := grid.Scenarios()
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
		return 1
	}
	opts := sweep.Options{Workers: workers}
	if verbose {
		opts.Observer = func(ev sweep.Event) {
			switch ev.Kind {
			case sweep.ScenarioStart:
				fmt.Fprintf(os.Stderr, "deepsim: start %s\n", ev.Name)
			case sweep.ScenarioDone:
				status := "done "
				if ev.Err != nil {
					status = "FAIL "
				}
				fmt.Fprintf(os.Stderr, "deepsim: %s %s\n", status, ev.Name)
			}
		}
	}
	rs := sweep.Run(scenarios, opts)
	switch {
	case asJSON:
		if err := rs.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			return 1
		}
	case asCSV:
		if err := rs.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			return 1
		}
	default:
		fmt.Print(rs.RenderText())
	}
	if rs.Failures > 0 {
		return 1
	}
	return 0
}
