// Command deepsim regenerates the tables and figures of "Application
// performance on a Cluster-Booster system" on the simulated DEEP-ER
// prototype, and runs declarative scenario sweeps over the evaluation space.
// Every table and figure target resolves through the experiment registry
// (internal/exp) — the same catalog cbctl lists, diffs and blesses.
//
// Usage:
//
//	deepsim [flags] table1|table2|fig3|fig7|fig8|fig-resilience|all
//	deepsim -sweep [flags]
//	deepsim -resilience [flags]
//	deepsim -facility [flags]
//
// Flags:
//
//	-quick     run reduced workloads (seconds instead of minutes)
//	-steps N   override the xPic step count
//	-scale K   override the particle fidelity divisor
//	-sweep     run the paper's full evaluation grid through the sweep engine
//	-scr       add the SCR checkpoint-level axis to the sweep
//	-workers N bound the sweep worker pool (0 = GOMAXPROCS)
//	-kworkers K run each eligible scenario's event kernel on K cores with the
//	           conservative synchronous-window scheme (0/1 = serial); results
//	           are bit-identical to serial for every K
//	-json      emit canonical JSON (registry documents, or sweep results);
//	           with multiple targets ("all") the output is a stream of
//	           concatenated documents, one per target, not one JSON value
//	-csv       emit sweep results as CSV instead of text
//	-v         print per-scenario progress to stderr
//	-store DIR layer the persistent run store (internal/runstore) under the
//	           scenario cache: successful compute runs are published to DIR
//	           and any process sharing DIR (deepsim or cbctl) reuses them
//	-stats     print execution-kernel runtime stats (events processed,
//	           events/sec wall-clock, peak parked ranks), scenario-cache
//	           hit/miss counters and run-store counters to stderr
//	-cpuprofile F  write a pprof CPU profile of the run to F
//	-memprofile F  write a pprof allocation profile of the run to F
//
// Resilience flags (§III-D live fault injection; use with -resilience):
//
//	-resilience        run one checkpoint/restart scenario under failure
//	                   injection and report the outcome
//	-mtbf S            per-node mean time between failures in *virtual*
//	                   seconds (0 = no failures); CI-scale workloads run
//	                   virtual milliseconds, so think 0.03, not hours
//	-failures N        stop injecting after N failures (default 1)
//	-ckpt N            checkpoint every N completed steps (default 4)
//	-level L           surviving checkpoint level cadence: local, buddy or
//	                   global (default buddy; global needs a mono mode)
//	-mode M            execution mode: cluster, booster or split (default
//	                   booster)
//	-nodes N           ranks per solver (default 2)
//	-seed S            failure-sequence seed (default 1)
//	-restart-overhead S  fixed relaunch cost per restart in virtual seconds
//
// Facility flags (batch system under load on a failing machine; use with
// -facility; -mtbf and -seed are shared with -resilience but here apply
// per *module*, not per node):
//
//	-facility          run one synthetic arrival stream through the batch
//	                   queue and report the facility outcome
//	-policy P          batch discipline: fcfs, backfill or malleable
//	                   (default backfill)
//	-jobs N            arrival-stream length (default 600)
//	-load F            offered load on the bottleneck module (default 1.4:
//	                   sustained overload, the queue grows)
//	-mtbf S            per-module mean time between failures in virtual
//	                   seconds (0 = a failure-free machine)
//	-mttr S            per-module mean time to repair (default 1.5)
//	-retries N         kill/requeue budget per job before the facility
//	                   abandons it (default 16)
//	-ckpt-every S      facility checkpoint interval in virtual seconds
//	                   (0 = cold restarts; cost/restore follow the
//	                   fig-facility-resilience policy: 10ms/20ms)
//
// The figure targets print the measured series next to the paper's reference
// values; EXPERIMENTS.md records a full run and documents the registry. The
// output is deterministic: the same target always produces byte-identical
// JSON, regardless of -workers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"clusterbooster/internal/bench"
	"clusterbooster/internal/engine"
	"clusterbooster/internal/exp"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/prof"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/resilience"
	"clusterbooster/internal/runstore"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	steps := flag.Int("steps", 0, "override xPic step count")
	scale := flag.Int("scale", 0, "override particle fidelity divisor")
	doSweep := flag.Bool("sweep", false, "run the paper's evaluation grid through the sweep engine")
	withSCR := flag.Bool("scr", false, "add the SCR checkpoint-level axis to the sweep")
	doResilience := flag.Bool("resilience", false, "run a checkpoint/restart scenario under failure injection")
	doFacility := flag.Bool("facility", false, "run a synthetic arrival stream through the batch queue on a (possibly failing) machine")
	mtbf := flag.Float64("mtbf", 0, "MTBF in virtual seconds: per node with -resilience, per module with -facility (0 = no failures)")
	maxFailures := flag.Int("failures", 1, "stop injecting after N failures")
	ckptEvery := flag.Int("ckpt", 4, "checkpoint every N completed steps (0 = never)")
	level := flag.String("level", "buddy", "surviving checkpoint level cadence: local, buddy or global")
	modeName := flag.String("mode", "booster", "execution mode: cluster, booster or split")
	nodes := flag.Int("nodes", 2, "ranks per solver")
	seed := flag.Int64("seed", 1, "failure-sequence seed")
	restartOverhead := flag.Float64("restart-overhead", 0.002, "fixed relaunch cost per restart, virtual seconds")
	policy := flag.String("policy", "backfill", "facility batch discipline: fcfs, backfill or malleable")
	jobs := flag.Int("jobs", 600, "facility arrival-stream length")
	load := flag.Float64("load", 1.4, "facility offered load on the bottleneck module")
	mttr := flag.Float64("mttr", 1.5, "per-module mean time to repair, virtual seconds")
	retries := flag.Int("retries", 16, "facility kill/requeue budget per job before abandonment")
	ckptEverySec := flag.Float64("ckpt-every", 0, "facility checkpoint interval, virtual seconds (0 = cold restarts)")
	workers := flag.Int("workers", 0, "sweep worker pool bound (0 = GOMAXPROCS)")
	kworkers := flag.Int("kworkers", 0, "kernel workers per eligible launch: conservative parallel execution of each scenario, bit-identical to serial (0/1 = serial)")
	asJSON := flag.Bool("json", false, "emit canonical JSON instead of text")
	asCSV := flag.Bool("csv", false, "emit sweep results as CSV instead of text")
	verbose := flag.Bool("v", false, "per-scenario progress on stderr")
	storeDir := flag.String("store", "", "persistent run-store directory shared across processes (\"\" = in-process cache only)")
	stats := flag.Bool("stats", false, "print execution-kernel runtime stats to stderr after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deepsim [flags] %s|all\n", strings.Join(artifactNames(), "|"))
		fmt.Fprintf(os.Stderr, "       deepsim -sweep [flags]\n")
		fmt.Fprintf(os.Stderr, "       deepsim -resilience [-mtbf S] [-failures N] [-ckpt N] [-level L] [-mode M] [flags]\n")
		fmt.Fprintf(os.Stderr, "       deepsim -facility [-policy P] [-jobs N] [-load F] [-mtbf S] [-mttr S] [-retries N] [-ckpt-every S] [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// The kernel worker count is a process-wide execution setting, not part
	// of any scenario's configuration (results are bit-identical for every
	// value, so it must never enter a cache key or a golden).
	psmpi.SetDefaultKernelWorkers(*kworkers)

	if *storeDir != "" {
		st, err := runstore.Open(*storeDir, exp.CacheEpoch())
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			os.Exit(2)
		}
		sweep.SetDiskRunStore(st)
	}

	// os.Exit skips defers, so every exit path below goes through exit() to
	// flush the -cpuprofile/-memprofile capture first.
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
		os.Exit(2)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
		}
		os.Exit(code)
	}

	cfg := xpic.Table2Config()
	if *quick {
		cfg.Steps = 60
		cfg.ParticleScale = 512
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *scale > 0 {
		cfg.ParticleScale = *scale
	}

	opts := exp.Options{Workers: *workers, Workload: &cfg}
	if *verbose {
		opts.Observer = exp.ProgressObserver(os.Stderr, "deepsim")
	}

	if *doSweep {
		if flag.NArg() != 0 || *doResilience || *doFacility {
			flag.Usage()
			exit(2)
		}
		code := runSweep(cfg, *withSCR, opts, *asJSON, *asCSV)
		reportStats(*stats)
		exit(code)
	}

	if *doFacility {
		if flag.NArg() != 0 || *doResilience {
			flag.Usage()
			exit(2)
		}
		code := runFacilityMode(facilityFlags{
			policy: *policy, jobs: *jobs, load: *load, seed: *seed,
			mtbf: *mtbf, mttr: *mttr, retries: *retries, ckptEvery: *ckptEverySec,
		}, *asJSON)
		reportStats(*stats)
		exit(code)
	}

	if *doResilience {
		if flag.NArg() != 0 {
			flag.Usage()
			exit(2)
		}
		code := runResilience(resilienceFlags{
			cfg: cfg, mode: *modeName, level: *level, nodes: *nodes,
			ckptEvery: *ckptEvery, mtbf: *mtbf, failures: *maxFailures,
			seed: *seed, restartOverhead: *restartOverhead,
		}, *asJSON)
		reportStats(*stats)
		exit(code)
	}

	if flag.NArg() != 1 {
		flag.Usage()
		exit(2)
	}
	if *withSCR || *asCSV {
		fmt.Fprintln(os.Stderr, "deepsim: -scr and -csv require -sweep")
		exit(2)
	}

	target := flag.Arg(0)
	var targets []string
	if target == "all" {
		targets = artifactNames()
	} else if _, ok := exp.Get(target); ok && !strings.Contains(target, "/") {
		targets = []string{target}
	} else {
		flag.Usage()
		exit(2)
	}

	for _, name := range targets {
		e, _ := exp.Get(name)
		doc, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %s: %v\n", name, err)
			exit(1)
		}
		if *asJSON {
			b, err := doc.Canonical()
			if err != nil {
				fmt.Fprintf(os.Stderr, "deepsim: %s: %v\n", name, err)
				exit(1)
			}
			os.Stdout.Write(b)
			continue
		}
		text, err := e.Render(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %s: %v\n", name, err)
			exit(1)
		}
		fmt.Println(text)
	}
	reportStats(*stats)
	exit(0)
}

// reportStats prints the aggregated execution-kernel counters (events
// processed, events/sec wall-clock, peak parked ranks), the I/O and
// batch-queue counters and the scenario cache counters to stderr.
func reportStats(enabled bool) {
	if !enabled {
		return
	}
	fmt.Fprintf(os.Stderr, "deepsim: kernel %s\n", engine.Global())
	fmt.Fprintf(os.Stderr, "deepsim: io %s\n", ioev.Global())
	fmt.Fprintf(os.Stderr, "deepsim: queue %s\n", sched.Global())
	fmt.Fprintf(os.Stderr, "deepsim: %s\n", sweep.RunCacheStats())
	if st := sweep.DiskRunStore(); st != nil {
		fmt.Fprintf(os.Stderr, "deepsim: run store: %s\n", st.Stats())
	}
}

// artifactNames lists the registry's paper artifacts (the targets of this
// command) in paper order — the sweep entries live under "sweep/" and are
// cbctl's domain.
func artifactNames() []string {
	var out []string
	for _, name := range exp.Names() {
		if !strings.Contains(name, "/") {
			out = append(out, name)
		}
	}
	return out
}

// resilienceFlags bundles the -resilience invocation.
type resilienceFlags struct {
	cfg             xpic.Config
	mode            string
	level           string
	nodes           int
	ckptEvery       int
	mtbf            float64
	failures        int
	seed            int64
	restartOverhead float64
}

// runResilience executes one checkpoint/restart scenario under failure
// injection and reports the outcome.
func runResilience(f resilienceFlags, asJSON bool) int {
	params := resilience.Params{
		Nodes:           f.nodes,
		Workload:        f.cfg,
		CheckpointEvery: f.ckptEvery,
		MTBF:            vclock.Time(f.mtbf),
		Seed:            f.seed,
		MaxFailures:     f.failures,
		RestartOverhead: vclock.Time(f.restartOverhead),
	}
	switch f.mode {
	case "cluster":
		params.Mode = xpic.ClusterOnly
	case "booster":
		params.Mode = xpic.BoosterOnly
	case "split":
		params.Mode = xpic.SplitCB
	default:
		fmt.Fprintf(os.Stderr, "deepsim: unknown mode %q (cluster, booster, split)\n", f.mode)
		return 2
	}
	switch f.level {
	case "local":
	case "buddy":
		params.SCR.BuddyEvery = 1
	case "global":
		params.SCR.GlobalEvery = 1
	default:
		fmt.Fprintf(os.Stderr, "deepsim: unknown level %q (local, buddy, global)\n", f.level)
		return 2
	}
	out, err := resilience.Run(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsim: resilience: %v\n", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Printf("resilience %s/%s: %s\n", f.mode, f.level, out.Report)
	fmt.Printf("  failures=%d checkpoints=%d (cost %v) lost_work=%v restore=%v overhead=%v\n",
		out.Failures, out.Checkpoints, out.CheckpointTime, out.LostWork, out.RestoreTime, out.RestartOverheadTotal)
	for i, r := range out.Restarts {
		kind := fmt.Sprintf("rewind to step %d via %v", r.FromStep, r.Levels)
		if r.Cold {
			kind = "cold restart from step 0"
		}
		fmt.Printf("  restart %d: %s failed at %v — %s (lost %v)\n",
			i+1, r.FailedNode, r.At, kind, r.LostWork)
	}
	return 0
}

// facilityFlags bundles the -facility invocation.
type facilityFlags struct {
	policy    string
	jobs      int
	load      float64
	seed      int64
	mtbf      float64
	mttr      float64
	retries   int
	ckptEvery float64
}

// runFacilityMode schedules one synthetic arrival stream through the batch
// queue — on a failing machine when -mtbf is set — and reports the facility
// outcome next to the analytic steady-state availability MTBF/(MTBF+MTTR).
func runFacilityMode(f facilityFlags, asJSON bool) int {
	params := sched.FacilityParams{
		Policy: sched.FacilityPolicy(f.policy),
		Jobs:   f.jobs,
		Load:   f.load,
		Seed:   f.seed,
	}
	if f.mtbf > 0 {
		faults := &sched.FacilityFaults{
			Cluster:    machine.FailureProfile{MTBF: vclock.Time(f.mtbf), MTTR: vclock.Time(f.mttr)},
			Booster:    machine.FailureProfile{MTBF: vclock.Time(f.mtbf), MTTR: vclock.Time(f.mttr)},
			Seed:       f.seed,
			MaxRetries: f.retries,
		}
		if f.ckptEvery > 0 {
			// The fig-facility-resilience checkpoint policy at the chosen
			// interval: write cost 10ms, restore 20ms.
			faults.Rewind = resilience.FacilityCheckpoint{
				Every:   vclock.Time(f.ckptEvery),
				Cost:    10 * vclock.Millisecond,
				Restore: 20 * vclock.Millisecond,
			}
		}
		params.Faults = faults
	}
	out, err := sched.RunFacility(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsim: facility: %v\n", err)
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Printf("facility %s: %d jobs at load %.2f (seed %d)\n", f.policy, f.jobs, f.load, f.seed)
	fmt.Printf("  completed=%d abandoned=%d makespan=%v mean_wait=%v slowdown mean=%.2f p95=%.2f\n",
		out.Jobs, out.Abandoned, out.Makespan, out.MeanWait, out.MeanSlowdown, out.P95Slowdown)
	fmt.Printf("  util cluster=%.3f booster=%.3f backfilled=%d shrunk=%d peak_queue=%d\n",
		out.UtilCluster, out.UtilBooster, out.Backfilled, out.Shrunk, out.PeakQueue)
	if params.Faults == nil {
		return 0
	}
	analytic := params.Faults.Cluster.Availability()
	fmt.Printf("  failures=%d repairs=%d requeues=%d lost_node_s=%.3f goodput=%.3f horizon=%v\n",
		out.Failures, out.Repairs, out.Requeues, out.LostNodeSec, out.Goodput, out.Horizon)
	fmt.Printf("  availability cluster=%.4f booster=%.4f (analytic MTBF/(MTBF+MTTR)=%.4f)\n",
		out.AvailCluster, out.AvailBooster, analytic)
	fmt.Printf("  saturated window: util cluster=%.3f booster=%.3f avail cluster=%.4f booster=%.4f\n",
		out.SatUtilCluster, out.SatUtilBooster, out.SatAvailCluster, out.SatAvailBooster)
	return 0
}

// runSweep expands the paper grid and executes it on the worker pool.
func runSweep(cfg xpic.Config, withSCR bool, opts exp.Options, asJSON, asCSV bool) int {
	grid := bench.PaperGrid(cfg, withSCR)
	scenarios, err := grid.Scenarios()
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
		return 1
	}
	rs := sweep.Run(scenarios, sweep.Options{Workers: opts.Workers, Observer: opts.Observer})
	switch {
	case asJSON:
		if err := rs.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			return 1
		}
	case asCSV:
		if err := rs.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "deepsim: %v\n", err)
			return 1
		}
	default:
		fmt.Print(rs.RenderText())
	}
	if rs.Failures > 0 {
		return 1
	}
	return 0
}
