package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clusterbooster/internal/benchdata"
)

const benchOutput = `goos: linux
BenchmarkKernelFast 	 1000000	      1000 ns/op	     100 B/op	       2 allocs/op
BenchmarkKernelSlow 	     100	   2000000 ns/op	    5000 B/op	      40 allocs/op
PASS
`

// benchDir writes the benchmark output to a temp module root and returns
// (root, input path).
func benchDir(t *testing.T) (string, string) {
	t.Helper()
	root := t.TempDir()
	in := filepath.Join(root, "bench.out")
	if err := os.WriteFile(in, []byte(benchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	return root, in
}

func TestBenchParsePrints(t *testing.T) {
	_, in := benchDir(t)
	var out, errw bytes.Buffer
	if code := dispatch([]string{"bench", "-in", in}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	b, err := benchdata.ParseBaseline(out.Bytes())
	if err != nil {
		t.Fatalf("output is not a baseline: %v\n%s", err, out.String())
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(b.Benchmarks))
	}
}

func TestBenchUpdateThenCheck(t *testing.T) {
	root, in := benchDir(t)
	var out, errw bytes.Buffer
	if code := dispatch([]string{"bench", "-update", "-C", root, "-in", in, "-note", "test"}, &out, &errw); code != 0 {
		t.Fatalf("update: exit %d, stderr: %s", code, errw.String())
	}
	if _, err := os.Stat(filepath.Join(root, "BENCH_kernel.json")); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Identical run: check passes.
	out.Reset()
	if code := dispatch([]string{"bench", "-check", "-C", root, "-in", in}, &out, &errw); code != 0 {
		t.Fatalf("check: exit %d\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("check output: %s", out.String())
	}

	// Regressed run: ns/op +50% and allocs +50% on one benchmark, the other
	// missing entirely — check must fail and name both.
	regressed := filepath.Join(root, "regressed.out")
	slow := "BenchmarkKernelFast 	 1000	      1500 ns/op	     100 B/op	       3 allocs/op\n"
	if err := os.WriteFile(regressed, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := dispatch([]string{"bench", "-check", "-C", root, "-in", regressed}, &out, &errw); code != 1 {
		t.Fatalf("regressed check: exit %d, want 1\n%s", code, out.String())
	}
	for _, want := range []string{"KernelFast", "ns/op", "KernelSlow", "missing"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("regression report misses %q:\n%s", want, out.String())
		}
	}

	// A generous tolerance absorbs the slowdown but not the missing bench.
	out.Reset()
	if code := dispatch([]string{"bench", "-check", "-max-regress", "0.6", "-C", root, "-in", regressed}, &out, &errw); code != 1 {
		t.Fatalf("tolerant check: exit %d, want 1 (KernelSlow is missing)\n%s", code, out.String())
	}
}

// TestBenchCheckReportsSkippedSpeedups pins the satellite fix: a speedup
// gate disarmed by the host's CPU count must be announced, not silently
// dropped from the report.
func TestBenchCheckReportsSkippedSpeedups(t *testing.T) {
	root, in := benchDir(t)
	fresh, err := benchdata.Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}

	writeBaseline := func(minCPUs int) {
		t.Helper()
		b := fresh
		// KernelSlow/KernelFast = 2000000/1000 ns: the 2.0x gate holds
		// comfortably whenever it is enforced.
		b.Speedups = []benchdata.Speedup{
			{Name: "KernelFast", Base: "KernelSlow", MinRatio: 2.0, MinCPUs: minCPUs},
		}
		data, err := b.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, "BENCH_kernel.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// MinCPUs far beyond any host: the gate is skipped, the run still passes,
	// and the skip is spelled out with the CPU counts.
	writeBaseline(1 << 20)
	var out, errw bytes.Buffer
	if code := dispatch([]string{"bench", "-check", "-C", root, "-in", in}, &out, &errw); code != 0 {
		t.Fatalf("check: exit %d\n%s%s", code, out.String(), errw.String())
	}
	for _, want := range []string{"skipped", "speedup gate", "CPUs", "1048576 required"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("skip report misses %q:\n%s", want, out.String())
		}
	}

	// MinCPUs 1: every host enforces the gate, so no skip line appears.
	writeBaseline(1)
	out.Reset()
	if code := dispatch([]string{"bench", "-check", "-C", root, "-in", in}, &out, &errw); code != 0 {
		t.Fatalf("enforced check: exit %d\n%s%s", code, out.String(), errw.String())
	}
	if strings.Contains(out.String(), "skipped") {
		t.Fatalf("enforced gate must not report a skip:\n%s", out.String())
	}
}

func TestBenchUsageErrors(t *testing.T) {
	root, in := benchDir(t)
	var out, errw bytes.Buffer
	if code := dispatch([]string{"bench", "-check", "-update", "-C", root, "-in", in}, &out, &errw); code != 2 {
		t.Fatalf("-check -update together: exit %d, want 2", code)
	}
	// -check without a recorded baseline fails with a hint.
	if code := dispatch([]string{"bench", "-check", "-C", root, "-in", in}, &out, &errw); code != 1 {
		t.Fatalf("check without baseline: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "bench -update") {
		t.Fatalf("missing re-record hint: %s", errw.String())
	}
}
