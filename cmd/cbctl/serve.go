// The serve verb: cbctl as a long-running sweep service. The process holds
// the in-process scenario cache (and, with -store, the shared persistent
// store) across requests, so repeated and overlapping experiment requests
// become incremental — the "sweep-as-a-service" step of the roadmap.
//
// Endpoints:
//
//	GET /healthz          liveness ("ok")
//	GET /statsz           runtime counters, text/plain: serve request
//	                      counters plus the kernel, I/O, batch-queue,
//	                      scenario-cache and run-store lines of -stats
//	GET /v1/experiments   the catalog as a JSON array
//	GET /v1/run?exp=NAME  run experiments, streaming NDJSON: one compact
//	                      canonical document per line, flushed as each
//	                      experiment completes (repeat exp=, or all=1 for
//	                      the whole catalog) — byte-identical to
//	                      `cbctl run -ndjson`
//
// A run error is reported in-stream as {"experiment":NAME,"error":MSG} and
// the stream continues with the next selected experiment (the transport
// status is already committed once streaming began).
//
// Concurrent requests for overlapping grids dedupe in-flight work through
// the scenario cache's singleflight entries (internal/sweep/runcache.go):
// two clients asking for the same compute point share one simulation, and
// with -store the result is published once for every later process too.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/exp"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/runstore"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/sweep"
)

// runServe starts the HTTP service and blocks until the listener fails.
func runServe(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("cbctl serve", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "sweep worker pool bound per request (0 = GOMAXPROCS)")
	kworkers := fs.Int("kworkers", 0, "kernel workers per eligible launch: conservative parallel execution, bit-identical to serial (0/1 = serial)")
	store := fs.String("store", "", "persistent run-store directory shared across processes (\"\" = in-process cache only)")
	verbose := fs.Bool("v", false, "per-scenario progress on stderr")
	switch err := fs.Parse(args); {
	case errors.Is(err, flag.ErrHelp):
		return 0
	case err != nil:
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(errw, "cbctl: serve takes no positional arguments")
		return 2
	}
	psmpi.SetDefaultKernelWorkers(*kworkers)
	if *store != "" {
		st, err := runstore.Open(*store, exp.CacheEpoch())
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 2
		}
		sweep.SetDiskRunStore(st)
	}
	s := &server{workers: *workers}
	if *verbose {
		s.observer = exp.ProgressObserver(errw, "cbctl")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "cbctl: serving on http://%s (epoch %s)\n", ln.Addr(), exp.CacheEpoch())
	if err := http.Serve(ln, s.handler()); err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return 1
	}
	return 0
}

// server is the HTTP state: run options plus request counters for /statsz.
type server struct {
	workers  int
	observer func(sweep.Event)

	requests  atomic.Uint64 // HTTP requests accepted, all endpoints
	docs      atomic.Uint64 // documents streamed successfully
	runErrors atomic.Uint64 // experiment runs that failed
	canceled  atomic.Uint64 // run requests abandoned by the client mid-stream
}

// handler routes the service's endpoints.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /statsz", s.statsz)
	mux.HandleFunc("GET /v1/experiments", s.experiments)
	mux.HandleFunc("GET /v1/run", s.run)
	return mux
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// statsz mirrors the -stats stderr lines over HTTP, prefixed with the serve
// counters, so operators and the CI smoke can watch a running service.
func (s *server) statsz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "serve: requests=%d docs=%d run_errors=%d canceled=%d\n",
		s.requests.Load(), s.docs.Load(), s.runErrors.Load(), s.canceled.Load())
	fmt.Fprintf(w, "kernel %s\n", engine.Global())
	fmt.Fprintf(w, "io %s\n", ioev.Global())
	fmt.Fprintf(w, "queue %s\n", sched.Global())
	fmt.Fprintf(w, "%s\n", sweep.RunCacheStats())
	if st := sweep.DiskRunStore(); st != nil {
		fmt.Fprintf(w, "run store: %s\n", st.Stats())
	} else {
		fmt.Fprintln(w, "run store: disabled")
	}
}

// experiments lists the catalog in registration (paper) order.
func (s *server) experiments(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	type row struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
		Title   string `json:"title"`
		Profile string `json:"profile"`
		Grid    string `json:"grid"`
		Budgets int    `json:"budgets"`
	}
	var rows []row
	for _, e := range exp.All() {
		rows = append(rows, row{e.Name, e.Version, e.Title, e.Profile, e.Grid, len(e.Budgets)})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rows)
}

// run streams the selected experiments as NDJSON.
func (s *server) run(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	q := r.URL.Query()
	var exps []exp.Experiment
	var err error
	switch {
	case q.Get("all") != "":
		if len(q["exp"]) != 0 {
			err = fmt.Errorf("all=1 and exp= are mutually exclusive")
		} else {
			exps = exp.All()
		}
	case len(q["exp"]) != 0:
		exps, err = exp.Resolve(q["exp"])
	default:
		err = fmt.Errorf("no experiments selected (repeat exp=NAME, or pass all=1)")
	}
	if err != nil {
		http.Error(w, "cbctl serve: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// The request context cancels the in-flight run: a disconnected client
	// stops the stream between experiments, and inside one the sweep engine
	// starts no further scenarios (already-running simulations finish — they
	// are synchronous and never torn down mid-run, and their results stay
	// cached for the next request).
	ctx := r.Context()
	opts := exp.Options{Workers: s.workers, Observer: s.observer, Context: ctx}
	for _, e := range exps {
		if ctx.Err() != nil {
			s.canceled.Add(1)
			return
		}
		line, err := runNDJSONLine(e, opts)
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation surfaces as a run error; count it as a
				// canceled request, not a failed experiment, and stop — the
				// client is gone.
				s.canceled.Add(1)
				return
			}
			s.runErrors.Add(1)
			line, _ = json.Marshal(struct {
				Experiment string `json:"experiment"`
				Error      string `json:"error"`
			}{e.Name, err.Error()})
			line = append(line, '\n')
		} else {
			s.docs.Add(1)
		}
		w.Write(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runNDJSONLine executes one experiment and renders its compact stream line.
func runNDJSONLine(e exp.Experiment, opts exp.Options) ([]byte, error) {
	doc, err := e.Run(opts)
	if err != nil {
		return nil, err
	}
	return doc.NDJSON()
}
