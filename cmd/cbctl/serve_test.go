package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"clusterbooster/internal/exp"
)

// registerServeFakes adds a failing experiment for the error-line path and
// a cancelling one for the client-disconnect path. The catalog is
// process-global, so register exactly once (like registerFakes).
var registerServeFakes = sync.OnceFunc(func() {
	failing := exp.Experiment{
		Name: "test/failing", Title: "always-failing fake", Version: 1, Grid: "static", Profile: "n/a",
	}
	failing.Run = func(exp.Options) (exp.Document, error) {
		return exp.Document{}, io.ErrUnexpectedEOF
	}
	exp.Register(failing)

	cancelling := exp.Experiment{
		Name: "test/cancelling", Title: "client-vanishes fake", Version: 1, Grid: "static", Profile: "n/a",
	}
	cancelling.Run = func(o exp.Options) (exp.Document, error) {
		if o.Context == nil {
			return exp.Document{}, errors.New("request context not plumbed into exp.Options")
		}
		if serveCancelHook != nil {
			serveCancelHook() // the client hangs up while this run is in flight
		}
		return fakeDoc(cancelling, 1.0), nil
	}
	exp.Register(cancelling)
})

// serveCancelHook, when set, is invoked from test/cancelling's Run.
var serveCancelHook func()

// serveGet issues one request against the serve handler without a network
// listener and returns the recorded response.
func serveGet(t *testing.T, s *server, target string) *httptest.ResponseRecorder {
	t.Helper()
	registerFakes()
	registerServeFakes()
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec
}

func TestServeHealthz(t *testing.T) {
	rec := serveGet(t, &server{}, "/healthz")
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz: code %d body %q", rec.Code, rec.Body.String())
	}
}

func TestServeExperimentsCatalog(t *testing.T) {
	rec := serveGet(t, &server{}, "/v1/experiments")
	if rec.Code != 200 {
		t.Fatalf("experiments: code %d", rec.Code)
	}
	var rows []struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("experiments: invalid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, r := range rows {
		if r.Version < 1 {
			t.Fatalf("experiments: %s has version %d", r.Name, r.Version)
		}
		names[r.Name] = true
	}
	if !names["test/stable"] {
		t.Fatalf("experiments: catalog %v missing test/stable", names)
	}
}

// TestServeRunMatchesCLI is the stream contract: the bytes served for an
// experiment are identical to `cbctl run -ndjson` for the same experiment.
func TestServeRunMatchesCLI(t *testing.T) {
	rec := serveGet(t, &server{}, "/v1/run?exp=test/stable")
	if rec.Code != 200 {
		t.Fatalf("run: code %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("run: Content-Type %q", ct)
	}
	code, stdout, stderr := cbctl(t, "run", "-ndjson", "test/stable")
	if code != 0 {
		t.Fatalf("cbctl run -ndjson failed: %d\n%s", code, stderr)
	}
	if rec.Body.String() != stdout {
		t.Fatalf("serve stream != cli stream:\nserve: %q\ncli:   %q", rec.Body.String(), stdout)
	}
}

func TestServeRunMultipleAndErrorLine(t *testing.T) {
	s := &server{}
	rec := serveGet(t, s, "/v1/run?exp=test/failing&exp=test/stable")
	if rec.Code != 200 {
		t.Fatalf("run: code %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("run: got %d lines, want 2:\n%s", len(lines), rec.Body.String())
	}
	var errLine struct {
		Experiment string `json:"experiment"`
		Error      string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &errLine); err != nil {
		t.Fatalf("run: error line is not JSON: %v", err)
	}
	if errLine.Experiment != "test/failing" || errLine.Error == "" {
		t.Fatalf("run: error line %+v", errLine)
	}
	// The stream continues past the failure.
	var doc exp.Document
	if err := json.Unmarshal([]byte(lines[1]), &doc); err != nil || doc.Experiment != "test/stable" {
		t.Fatalf("run: second line %q (err %v)", lines[1], err)
	}
	if s.docs.Load() != 1 || s.runErrors.Load() != 1 {
		t.Fatalf("run: counters docs=%d run_errors=%d, want 1 and 1", s.docs.Load(), s.runErrors.Load())
	}
}

// TestServeRunClientGoneBeforeStart: a request whose context is already
// dead streams nothing and counts as canceled, not as a run error.
func TestServeRunClientGoneBeforeStart(t *testing.T) {
	registerFakes()
	registerServeFakes()
	s := &server{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/run?exp=test/stable", nil).WithContext(ctx)
	s.handler().ServeHTTP(rec, req)
	if got := rec.Body.String(); got != "" {
		t.Fatalf("dead request streamed %q", got)
	}
	if s.canceled.Load() != 1 || s.docs.Load() != 0 || s.runErrors.Load() != 0 {
		t.Fatalf("counters canceled=%d docs=%d run_errors=%d, want 1/0/0",
			s.canceled.Load(), s.docs.Load(), s.runErrors.Load())
	}
}

// TestServeRunClientGoneMidStream: the client disconnects while the first
// experiment runs; its document still streams (it completed), but the next
// selected experiment never starts.
func TestServeRunClientGoneMidStream(t *testing.T) {
	registerFakes()
	registerServeFakes()
	s := &server{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveCancelHook = cancel
	defer func() { serveCancelHook = nil }()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/run?exp=test/cancelling&exp=test/stable", nil).WithContext(ctx)
	s.handler().ServeHTTP(rec, req)
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d stream lines, want 1 (the in-flight experiment only):\n%s",
			len(lines), rec.Body.String())
	}
	var doc exp.Document
	if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil || doc.Experiment != "test/cancelling" {
		t.Fatalf("first line %q (err %v)", lines[0], err)
	}
	if s.canceled.Load() != 1 || s.docs.Load() != 1 {
		t.Fatalf("counters canceled=%d docs=%d, want 1/1", s.canceled.Load(), s.docs.Load())
	}
}

func TestServeRunBadRequests(t *testing.T) {
	for _, target := range []string{
		"/v1/run",                       // nothing selected
		"/v1/run?exp=no/such/exp",       // unknown name
		"/v1/run?all=1&exp=test/stable", // mutually exclusive
	} {
		if rec := serveGet(t, &server{}, target); rec.Code != 400 {
			t.Errorf("%s: code %d, want 400", target, rec.Code)
		}
	}
}

func TestServeStatsz(t *testing.T) {
	s := &server{}
	serveGet(t, s, "/healthz")
	rec := serveGet(t, s, "/statsz")
	if rec.Code != 200 {
		t.Fatalf("statsz: code %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"serve: requests=", "kernel ", "scenario cache:", "run store:"} {
		if !strings.Contains(body, want) {
			t.Errorf("statsz: missing %q in:\n%s", want, body)
		}
	}
}
