// Command cbctl drives the experiment registry: it lists the catalog, runs
// experiments to canonical JSON, diffs fresh runs against the checked-in
// golden baselines, and re-records (blesses) baselines after an intentional
// model change.
//
// Usage:
//
//	cbctl list [-v]
//	cbctl run   [-workers N] [-kworkers K] [-store DIR] [-v] [-text] [-ndjson] [-stats] [-cpuprofile F] [-memprofile F] -all | <experiment> ...
//	cbctl diff  [-workers N] [-kworkers K] [-store DIR] [-v] [-stats] [-tolerance] [-C dir] -all | <experiment> ...
//	cbctl bless [-workers N] [-kworkers K] [-store DIR] [-v] [-stats] [-C dir] -all | <experiment> ...
//	cbctl bench [-in FILE] [-check] [-update] [-max-regress F] [-C dir]
//	cbctl serve [-addr HOST:PORT] [-workers N] [-kworkers K] [-store DIR] [-v]
//
// run prints one canonical JSON document per selected experiment; with
// several experiments the output is a concatenated stream of documents (use
// a streaming decoder, or select one experiment for a single JSON value).
// -ndjson switches to one compact document per line — byte-identical to the
// serve stream, which the CI serve smoke job relies on. -stats adds the
// execution-kernel counters, the scenario-cache hit/miss counters and (with
// -store) the persistent-store counters on stderr; -cpuprofile/-memprofile
// capture pprof profiles of the runs for perf work. -kworkers K runs each
// eligible scenario's event kernel on K cores with the conservative
// synchronous-window scheme — results are bit-identical to serial for every
// K, so run, diff and bless all accept it.
//
// -store DIR layers the persistent, shared result store (internal/runstore)
// under the in-process scenario cache: successful compute runs are published
// to DIR under the current cache epoch (exp.CacheEpoch — registry versions
// plus the model fingerprint) and later processes start warm. Results are
// byte-identical with the store disabled, cold, warm, or shared between
// processes; the CI cold/warm diff legs hold that line.
//
// serve turns the catalog into a long-running HTTP service: experiment
// requests stream canonical documents as NDJSON, concurrent requests for
// overlapping grids dedupe in-flight compute through the scenario cache's
// singleflight entries, and /statsz exposes the runtime counters. See
// serve.go for the endpoints.
//
// bench maintains BENCH_kernel.json, the checked-in machine-readable
// baseline of the kernel benchmarks: it parses `go test -bench -benchmem`
// output from stdin (or -in), prints the canonical JSON form, records it
// (-update), or gates a fresh run against the baseline (-check fails on
// regressions beyond -max-regress; the CI bench-regression job runs it).
//
// diff exits non-zero when any experiment drifts from its golden, misses a
// baseline, or violates a declared virtual-time perf budget — the `golden`
// CI job runs `cbctl diff -all` so paper-artifact drift fails the build.
// Goldens are embedded into the binary; when the source tree is reachable
// (cwd inside the module, or -C), the on-disk copy under
// internal/exp/testdata/ takes precedence, so bless→diff needs no rebuild.
//
// By default diff is byte-for-byte: the simulation platform is deterministic
// in virtual time, so canonical documents must match exactly. -tolerance
// relaxes numeric leaves by each experiment's declared per-metric relative
// tolerances (for comparing across intentional model refinements before a
// bless).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"clusterbooster/internal/benchdata"
	"clusterbooster/internal/engine"
	"clusterbooster/internal/exp"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/prof"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/runstore"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/sweep"
)

func main() {
	flag.Usage = func() { usage(os.Stderr) }
	flag.Parse()
	os.Exit(dispatch(flag.Args(), os.Stdout, os.Stderr))
}

// dispatch routes a verb invocation; the writers make every verb — output,
// exit code and all — table-testable without touching the process streams.
func dispatch(args []string, out, errw io.Writer) int {
	if len(args) < 1 {
		usage(errw)
		return 2
	}
	verb, args := args[0], args[1:]
	switch verb {
	case "list":
		return runList(args, out, errw)
	case "run":
		return runRun(args, out, errw)
	case "diff":
		return runDiff(args, out, errw)
	case "bless":
		return runBless(args, out, errw)
	case "bench":
		return runBench(args, out, errw)
	case "serve":
		return runServe(args, out, errw)
	case "help", "-h", "-help", "--help":
		usage(errw)
		return 0
	default:
		fmt.Fprintf(errw, "cbctl: unknown verb %q\n", verb)
		usage(errw)
		return 2
	}
}

func usage(errw io.Writer) {
	fmt.Fprintf(errw, `usage:
  cbctl list [-v]
  cbctl run   [-workers N] [-kworkers K] [-store DIR] [-v] [-text] [-ndjson] [-stats] [-cpuprofile F] [-memprofile F] -all | <experiment> ...
  cbctl diff  [-workers N] [-kworkers K] [-store DIR] [-v] [-stats] [-tolerance] [-C dir] -all | <experiment> ...
  cbctl bless [-workers N] [-kworkers K] [-store DIR] [-v] [-stats] [-C dir] -all | <experiment> ...
  cbctl bench [-in FILE] [-check] [-update] [-max-regress F] [-C dir]
  cbctl serve [-addr HOST:PORT] [-workers N] [-kworkers K] [-store DIR] [-v]

Experiments are the registered paper artifacts and sweeps (see 'cbctl list'
and EXPERIMENTS.md). diff exits non-zero on golden drift, missing baselines,
or virtual-time budget violations. -store DIR shares compute results across
processes through an on-disk, epoch-scoped store (results are byte-identical
with the store disabled, cold or warm).

bench parses 'go test -bench -benchmem' output (stdin, or -in FILE) into the
canonical baseline JSON: -update records it as BENCH_kernel.json at the
module root, -check compares against the recorded baseline and exits
non-zero on any benchmark slower than -max-regress (default 0.25 = +25%%)
or allocating beyond it.

serve runs the catalog as an HTTP service: GET /v1/run?exp=NAME streams
canonical documents as NDJSON (one compact document per line, the same bytes
as 'cbctl run -ndjson'), GET /v1/experiments lists the catalog, /statsz the
runtime counters, /healthz liveness.
`)
}

// common per-verb flags.
type verbFlags struct {
	fs         *flag.FlagSet
	all        *bool
	workers    *int
	kworkers   *int
	store      *string
	verbose    *bool
	stats      *bool
	tolerance  *bool
	chdir      *string
	text       *bool
	ndjson     *bool
	cpuprofile *string
	memprofile *string
}

// parse runs the flag set; ok=false stops the verb with the given exit
// code — 0 for an explicit -h/--help (matching flag.ExitOnError's exit
// status), 2 for a genuine usage error.
func (v verbFlags) parse(args []string) (code int, ok bool) {
	switch err := v.fs.Parse(args); {
	case err == nil:
		return 0, true
	case errors.Is(err, flag.ErrHelp):
		return 0, false
	default:
		return 2, false
	}
}

func newFlags(verb string, errw io.Writer, withTolerance, withRoot, withText bool) verbFlags {
	fs := flag.NewFlagSet("cbctl "+verb, flag.ContinueOnError)
	fs.SetOutput(errw)
	v := verbFlags{
		fs:       fs,
		all:      fs.Bool("all", false, "select every registered experiment"),
		workers:  fs.Int("workers", 0, "sweep worker pool bound (0 = GOMAXPROCS)"),
		kworkers: fs.Int("kworkers", 0, "kernel workers per eligible launch: conservative parallel execution of each scenario, bit-identical to serial (0/1 = serial)"),
		store:    fs.String("store", "", "persistent run-store directory shared across processes (\"\" = in-process cache only); results are byte-identical either way"),
		verbose:  fs.Bool("v", false, "per-scenario progress on stderr"),
		stats:    fs.Bool("stats", false, "print execution-kernel, scenario-cache and run-store stats to stderr after the runs"),
	}
	if withTolerance {
		v.tolerance = fs.Bool("tolerance", false, "apply per-experiment relative tolerances to numeric drift")
	}
	if withRoot {
		v.chdir = fs.String("C", "", "module root for on-disk goldens (default: walk up from cwd)")
	}
	if withText {
		v.text = fs.Bool("text", false, "render paper-style text instead of canonical JSON")
		v.ndjson = fs.Bool("ndjson", false, "emit one compact JSON document per line (the cbctl serve stream format)")
		v.cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the runs to this file")
		v.memprofile = fs.String("memprofile", "", "write a pprof allocation profile of the runs to this file")
	}
	return v
}

// openStore connects the persistent run store when -store is set; reports
// whether the verb can proceed.
func (v verbFlags) openStore(errw io.Writer) bool {
	if v.store == nil || *v.store == "" {
		return true
	}
	st, err := runstore.Open(*v.store, exp.CacheEpoch())
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return false
	}
	sweep.SetDiskRunStore(st)
	return true
}

// reportStats prints the aggregated execution-kernel counters, the I/O
// stack's event counters, the batch-queue counters, the scenario-cache
// hit/miss counters and (when a -store is connected) the persistent-store
// counters to stderr when the verb's -stats flag is set.
func (v verbFlags) reportStats(errw io.Writer) {
	if v.stats != nil && *v.stats {
		fmt.Fprintf(errw, "cbctl: kernel %s\n", engine.Global())
		fmt.Fprintf(errw, "cbctl: io %s\n", ioev.Global())
		fmt.Fprintf(errw, "cbctl: queue %s\n", sched.Global())
		fmt.Fprintf(errw, "cbctl: %s\n", sweep.RunCacheStats())
		if st := sweep.DiskRunStore(); st != nil {
			fmt.Fprintf(errw, "cbctl: run store: %s\n", st.Stats())
		}
	}
}

// startProfiles arms -cpuprofile/-memprofile capture; the returned stop
// function is safe to call unconditionally.
func (v verbFlags) startProfiles(errw io.Writer) (func(), bool) {
	cpu, mem := "", ""
	if v.cpuprofile != nil {
		cpu = *v.cpuprofile
	}
	if v.memprofile != nil {
		mem = *v.memprofile
	}
	stop, err := prof.Start(cpu, mem)
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return func() {}, false
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
		}
	}, true
}

// select resolves the experiment selection from -all / positional names.
func (v verbFlags) selectExps() ([]exp.Experiment, error) {
	if *v.all {
		if v.fs.NArg() != 0 {
			return nil, fmt.Errorf("-all and explicit names are mutually exclusive")
		}
		return exp.All(), nil
	}
	if v.fs.NArg() == 0 {
		return nil, fmt.Errorf("no experiments selected (name them or pass -all)")
	}
	return exp.Resolve(v.fs.Args())
}

func (v verbFlags) options(errw io.Writer) exp.Options {
	// The kernel worker count is a process-wide execution setting, not part
	// of any scenario's configuration (results are bit-identical for every
	// value, so it must never enter a cache key or a golden).
	psmpi.SetDefaultKernelWorkers(*v.kworkers)
	o := exp.Options{Workers: *v.workers}
	if *v.verbose {
		o.Observer = exp.ProgressObserver(errw, "cbctl")
	}
	return o
}

// moduleRoot resolves the source tree for on-disk goldens ("" = embedded
// only).
func (v verbFlags) moduleRoot() string {
	if v.chdir != nil && *v.chdir != "" {
		return *v.chdir
	}
	return exp.FindModuleRoot(".")
}

func runList(args []string, out, errw io.Writer) int {
	v := newFlags("list", errw, false, true, false)
	if code, ok := v.parse(args); !ok {
		return code
	}
	if *v.all || v.fs.NArg() != 0 {
		fmt.Fprintln(errw, "cbctl: list takes no experiment arguments")
		return 2
	}
	root := v.moduleRoot()
	nameW, gridW := len("EXPERIMENT"), len("GRID")
	for _, e := range exp.All() {
		nameW = max(nameW, len(e.Name))
		gridW = max(gridW, len(e.Grid))
	}
	fmt.Fprintf(out, "%-*s  %3s  %-8s  %-6s  %7s  %s\n", nameW, "EXPERIMENT", "VER", "PROFILE", "GOLDEN", "BUDGETS", "TITLE")
	for _, e := range exp.All() {
		golden := "yes"
		if !exp.HasGolden(e.Name, root) {
			golden = "NO"
		}
		fmt.Fprintf(out, "%-*s  %3d  %-8s  %-6s  %7d  %s\n",
			nameW, e.Name, e.Version, e.Profile, golden, len(e.Budgets), e.Title)
		if *v.verbose {
			fmt.Fprintf(out, "%-*s       grid: %s\n", nameW, "", e.Grid)
			for _, b := range e.Budgets {
				fmt.Fprintf(out, "%-*s       budget: %s %s %g\n", nameW, "", b.Measure, b.Kind, b.Bound)
			}
		}
	}
	return 0
}

func runRun(args []string, out, errw io.Writer) int {
	v := newFlags("run", errw, false, false, true)
	if code, ok := v.parse(args); !ok {
		return code
	}
	exps, err := v.selectExps()
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return 2
	}
	if *v.text && *v.ndjson {
		fmt.Fprintln(errw, "cbctl: -text and -ndjson are mutually exclusive")
		return 2
	}
	if !v.openStore(errw) {
		return 2
	}
	stopProf, ok := v.startProfiles(errw)
	if !ok {
		return 2
	}
	defer stopProf()
	opts := v.options(errw)
	for _, e := range exps {
		doc, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(errw, "cbctl: run %s: %v\n", e.Name, err)
			return 1
		}
		if *v.ndjson {
			line, err := doc.NDJSON()
			if err != nil {
				fmt.Fprintf(errw, "cbctl: %v\n", err)
				return 1
			}
			out.Write(line)
			continue
		}
		if *v.text && e.Render != nil {
			text, err := e.Render(doc)
			if err != nil {
				fmt.Fprintf(errw, "cbctl: render %s: %v\n", e.Name, err)
				return 1
			}
			fmt.Fprintln(out, text)
			continue
		}
		b, err := doc.Canonical()
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		out.Write(b)
	}
	v.reportStats(errw)
	return 0
}

func runDiff(args []string, out, errw io.Writer) int {
	v := newFlags("diff", errw, true, true, false)
	if code, ok := v.parse(args); !ok {
		return code
	}
	exps, err := v.selectExps()
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return 2
	}
	if !v.openStore(errw) {
		return 2
	}
	opts := v.options(errw)
	root := v.moduleRoot()
	failed := 0
	for _, e := range exps {
		golden, source, err := exp.Golden(e.Name, root)
		if err != nil {
			fmt.Fprintf(out, "FAIL %-12s missing golden (%s) — bless it first\n", e.Name, exp.GoldenPath(e.Name))
			failed++
			continue
		}
		doc, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(out, "FAIL %-12s run error: %v\n", e.Name, err)
			failed++
			continue
		}
		fresh, err := doc.Canonical()
		if err != nil {
			fmt.Fprintf(out, "FAIL %-12s %v\n", e.Name, err)
			failed++
			continue
		}
		rep, err := exp.Diff(e, golden, fresh, v.tolerance != nil && *v.tolerance)
		if err != nil {
			fmt.Fprintf(out, "FAIL %-12s %v\n", e.Name, err)
			failed++
			continue
		}
		switch {
		case rep.Clean() && rep.Status == exp.Identical:
			fmt.Fprintf(out, "ok   %-12s identical to golden (%s)\n", e.Name, source)
		case rep.Clean():
			fmt.Fprintf(out, "ok   %-12s within tolerance (%d numeric deltas absorbed)\n", e.Name, len(rep.Tolerated))
		default:
			fmt.Fprintf(out, "FAIL %-12s %s: %d drifts, %d budget violations\n",
				e.Name, rep.Status, len(rep.Drifts), len(rep.Violations))
			fmt.Fprint(out, rep.Summary(8))
			failed++
		}
	}
	v.reportStats(errw)
	if failed > 0 {
		fmt.Fprintf(out, "\ncbctl diff: %d of %d experiments failed\n", failed, len(exps))
		fmt.Fprintln(out, "If the change is intentional, re-record with: cbctl bless -all")
		return 1
	}
	return 0
}

func runBless(args []string, out, errw io.Writer) int {
	v := newFlags("bless", errw, false, true, false)
	if code, ok := v.parse(args); !ok {
		return code
	}
	exps, err := v.selectExps()
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return 2
	}
	root := v.moduleRoot()
	if root == "" {
		fmt.Fprintln(errw, "cbctl: bless needs the source tree; run from inside the module or pass -C <root>")
		return 2
	}
	if !v.openStore(errw) {
		return 2
	}
	opts := v.options(errw)
	warned := false
	for _, e := range exps {
		doc, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(errw, "cbctl: bless %s: %v\n", e.Name, err)
			return 1
		}
		b, err := doc.Canonical()
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		for _, viol := range e.CheckBudgets(doc) {
			fmt.Fprintf(errw, "cbctl: warning: %s: %s (blessed anyway; revise the budget if intentional)\n", e.Name, viol)
			warned = true
		}
		p, err := exp.WriteGolden(root, e.Name, b)
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "blessed %-12s -> %s\n", e.Name, p)
	}
	if warned {
		fmt.Fprintln(errw, "cbctl: note: budget violations persist until the declared bounds are revised in internal/exp")
	}
	v.reportStats(errw)
	return 0
}

// benchBaselineFile is the checked-in benchmark baseline at the module root.
const benchBaselineFile = "BENCH_kernel.json"

// runBench converts `go test -bench -benchmem` output into the canonical
// baseline JSON, records it (-update), or gates a fresh run against the
// checked-in baseline (-check).
func runBench(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("cbctl bench", flag.ContinueOnError)
	fs.SetOutput(errw)
	in := fs.String("in", "-", "benchmark output to parse (default: stdin)")
	check := fs.Bool("check", false, "compare against the checked-in baseline; non-zero exit on regressions")
	update := fs.Bool("update", false, "record the parsed run as the new checked-in baseline")
	maxRegress := fs.Float64("max-regress", 0.25, "tolerated fractional ns/op slowdown per benchmark in -check mode")
	maxAllocs := fs.Float64("max-allocs-regress", -1, "tolerated fractional allocs/op growth in -check mode (default: -max-regress; allocs are machine-independent, so gate them tightly even when ns/op needs cross-machine slack)")
	note := fs.String("note", "", "provenance note stored in the baseline (with -update)")
	chdir := fs.String("C", "", "module root for the baseline file (default: walk up from cwd)")
	switch err := fs.Parse(args); {
	case errors.Is(err, flag.ErrHelp):
		return 0
	case err != nil:
		return 2
	}
	if fs.NArg() != 0 || (*check && *update) {
		fmt.Fprintln(errw, "cbctl: bench takes no positional arguments; -check and -update are mutually exclusive")
		return 2
	}

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	fresh, err := benchdata.Parse(src)
	if err != nil {
		fmt.Fprintf(errw, "cbctl: %v\n", err)
		return 1
	}
	fresh.Note = *note

	root := *chdir
	if root == "" {
		root = exp.FindModuleRoot(".")
	}
	switch {
	case *update:
		if root == "" {
			fmt.Fprintln(errw, "cbctl: bench -update needs the source tree; run from inside the module or pass -C <root>")
			return 2
		}
		// The speedups section is hand-maintained policy, not measurement:
		// carry it forward from the previous baseline across re-records.
		if old, err := os.ReadFile(filepath.Join(root, benchBaselineFile)); err == nil {
			if prev, err := benchdata.ParseBaseline(old); err == nil {
				fresh.Speedups = prev.Speedups
			}
		}
		b, err := fresh.Canonical()
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		path := filepath.Join(root, benchBaselineFile)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "recorded %d benchmarks -> %s\n", len(fresh.Benchmarks), path)
		return 0
	case *check:
		if root == "" {
			fmt.Fprintln(errw, "cbctl: bench -check needs the source tree; run from inside the module or pass -C <root>")
			return 2
		}
		data, err := os.ReadFile(filepath.Join(root, benchBaselineFile))
		if err != nil {
			fmt.Fprintf(errw, "cbctl: no baseline: %v (record one with: cbctl bench -update)\n", err)
			return 1
		}
		baseline, err := benchdata.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		if *maxAllocs < 0 {
			*maxAllocs = *maxRegress
		}
		regs := benchdata.Compare(baseline, fresh, *maxRegress, *maxAllocs)
		cpus := runtime.NumCPU()
		regs = append(regs, benchdata.CheckSpeedups(baseline, fresh, cpus)...)
		// An unenforceable speedup gate must be loud: a 2-CPU runner passing
		// -check is not evidence that the parallel kernel still wins.
		for _, s := range benchdata.SkippedSpeedups(baseline, cpus) {
			fmt.Fprintf(out, "skipped %s vs %s speedup gate: %d CPUs < %d required\n",
				s.Name, s.Base, cpus, s.MinCPUs)
		}
		if len(regs) == 0 {
			fmt.Fprintf(out, "ok   %d benchmarks within %.0f%% ns/op, %.0f%% allocs/op of %s\n",
				len(baseline.Benchmarks), *maxRegress*100, *maxAllocs*100, benchBaselineFile)
			return 0
		}
		for _, r := range regs {
			fmt.Fprintf(out, "FAIL %s\n", r)
		}
		fmt.Fprintf(out, "\ncbctl bench: %d of %d benchmarks regressed beyond %.0f%%\n",
			len(regs), len(baseline.Benchmarks), *maxRegress*100)
		fmt.Fprintln(out, "If the change is intentional, re-record with: go test ./internal/bench -run xxx -bench Kernel -benchmem | cbctl bench -update")
		return 1
	default:
		b, err := fresh.Canonical()
		if err != nil {
			fmt.Fprintf(errw, "cbctl: %v\n", err)
			return 1
		}
		out.Write(b)
		return 0
	}
}
