package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"clusterbooster/internal/exp"
)

// Test-only experiments: registered once into the process-global catalog
// under the test/ prefix, blessed into per-test temp roots via -C so the
// real testdata tree is never touched.
//
//   - test/stable   — deterministic; diff is always identical.
//   - test/drifting — each run's measure drifts 1 % from the last; a plain
//     diff fails, -tolerance (declared at 5 %) absorbs it.
//   - test/budget   — deterministic but violates its own declared budget;
//     diff must fail on the budget alone, bless must warn yet succeed.
var registerFakes = sync.OnceFunc(func() {
	stable := exp.Experiment{
		Name: "test/stable", Title: "stable fake", Version: 1, Grid: "static", Profile: "n/a",
	}
	stable.Run = func(exp.Options) (exp.Document, error) {
		return fakeDoc(stable, 1.0), nil
	}
	exp.Register(stable)

	drift := 1.0
	drifting := exp.Experiment{
		Name: "test/drifting", Title: "drifting fake", Version: 1, Grid: "static", Profile: "n/a",
		Tolerance: map[string]float64{"*": 0.05},
	}
	drifting.Run = func(exp.Options) (exp.Document, error) {
		drift *= 1.01
		return fakeDoc(drifting, drift), nil
	}
	exp.Register(drifting)

	budget := exp.Experiment{
		Name: "test/budget", Title: "budget-violating fake", Version: 1, Grid: "static", Profile: "n/a",
		Budgets: []exp.Budget{{Measure: "value", Kind: exp.MaxBudget, Bound: 0.5}},
	}
	budget.Run = func(exp.Options) (exp.Document, error) {
		return fakeDoc(budget, 1.0), nil // 1.0 > 0.5: always in violation
	}
	exp.Register(budget)
})

func fakeDoc(e exp.Experiment, value float64) exp.Document {
	payload, _ := json.Marshal(map[string]float64{"value": value})
	return exp.Document{
		Experiment: e.Name,
		Version:    e.Version,
		Measures:   map[string]float64{"value": value},
		Payload:    payload,
	}
}

// cbctl runs one verb in-process and captures output and exit code.
func cbctl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	registerFakes()
	var out, errw bytes.Buffer
	code = dispatch(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestVerbDispatch(t *testing.T) {
	for _, tc := range []struct {
		name     string
		args     []string
		wantCode int
		wantOut  string // substring of stdout ("" = don't care)
		wantErr  string // substring of stderr
	}{
		{"no verb", nil, 2, "", "usage:"},
		{"unknown verb", []string{"frobnicate"}, 2, "", `unknown verb "frobnicate"`},
		{"help", []string{"help"}, 0, "", "usage:"},
		{"list", []string{"list"}, 0, "fig-resilience", ""},
		{"list rejects args", []string{"list", "fig7"}, 2, "", "no experiment arguments"},
		{"list verbose budgets", []string{"list", "-v"}, 0, "budget: retention_split_buddy min 0.45", ""},
		{"run needs selection", []string{"run"}, 2, "", "no experiments selected"},
		{"run unknown experiment", []string{"run", "no-such-exp"}, 2, "", `unknown experiment "no-such-exp"`},
		{"run all plus names conflict", []string{"run", "-all", "fig7"}, 2, "", "mutually exclusive"},
		{"run emits canonical JSON", []string{"run", "test/stable"}, 0, `"experiment": "test/stable"`, ""},
		{"run renders text", []string{"run", "-text", "table1"}, 0, "DEEP-ER", ""},
		{"bad flag", []string{"run", "-definitely-not-a-flag"}, 2, "", "flag provided but not defined"},
		{"verb help exits zero", []string{"run", "-h"}, 0, "", "-workers"},
		{"diff missing golden", []string{"diff", "-C", t.TempDir(), "test/stable"}, 1, "missing golden", ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := cbctl(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d (stdout %q, stderr %q)", code, tc.wantCode, stdout, stderr)
			}
			if tc.wantOut != "" && !strings.Contains(stdout, tc.wantOut) {
				t.Fatalf("stdout %q missing %q", stdout, tc.wantOut)
			}
			if tc.wantErr != "" && !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr %q missing %q", stderr, tc.wantErr)
			}
		})
	}
}

// TestRunOutputParses checks the run verb's JSON is a canonical document.
func TestRunOutputParses(t *testing.T) {
	code, stdout, stderr := cbctl(t, "run", "test/stable")
	if code != 0 {
		t.Fatalf("run failed: %s", stderr)
	}
	doc, err := exp.ParseDocument([]byte(stdout))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "test/stable" || doc.Measures["value"] != 1 {
		t.Fatalf("unexpected document %+v", doc)
	}
}

// TestBlessDiffRoundTrip blesses into a temp root and checks diff turns
// green against it — without touching the real testdata tree.
func TestBlessDiffRoundTrip(t *testing.T) {
	root := t.TempDir()
	code, stdout, stderr := cbctl(t, "bless", "-C", root, "test/stable")
	if code != 0 {
		t.Fatalf("bless failed (%d): %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "blessed test/stable") {
		t.Fatalf("bless output %q", stdout)
	}
	code, stdout, _ = cbctl(t, "diff", "-C", root, "test/stable")
	if code != 0 || !strings.Contains(stdout, "identical to golden") {
		t.Fatalf("diff after bless: code %d, out %q", code, stdout)
	}
}

// TestDiffToleranceExitCodes drives the drifting experiment: byte drift must
// fail a plain diff (exit 1) and pass -tolerance (exit 0), since the 1 %
// drift sits inside the declared 5 % tolerance.
func TestDiffToleranceExitCodes(t *testing.T) {
	root := t.TempDir()
	if code, _, stderr := cbctl(t, "bless", "-C", root, "test/drifting"); code != 0 {
		t.Fatalf("bless failed: %s", stderr)
	}
	code, stdout, _ := cbctl(t, "diff", "-C", root, "test/drifting")
	if code != 1 {
		t.Fatalf("plain diff of drifted run: code %d, want 1 (out %q)", code, stdout)
	}
	if !strings.Contains(stdout, "drifts") {
		t.Fatalf("diff output %q missing drift report", stdout)
	}
	code, stdout, _ = cbctl(t, "diff", "-tolerance", "-C", root, "test/drifting")
	if code != 0 || !strings.Contains(stdout, "within tolerance") {
		t.Fatalf("tolerant diff: code %d, out %q", code, stdout)
	}
}

// TestBudgetViolationExitCodes drives the budget-violating experiment:
// bless warns but succeeds (baselines may be re-recorded), while diff fails
// with exit 1 even though the bytes match the golden — budgets survive
// blessing.
func TestBudgetViolationExitCodes(t *testing.T) {
	root := t.TempDir()
	code, _, stderr := cbctl(t, "bless", "-C", root, "test/budget")
	if code != 0 {
		t.Fatalf("bless of budget violator must succeed, got %d", code)
	}
	if !strings.Contains(stderr, "warning") || !strings.Contains(stderr, "budget value") {
		t.Fatalf("bless stderr %q missing budget warning", stderr)
	}
	code, stdout, _ := cbctl(t, "diff", "-C", root, "test/budget")
	if code != 1 {
		t.Fatalf("diff with budget violation: code %d, want 1 (out %q)", code, stdout)
	}
	if !strings.Contains(stdout, "1 budget violations") {
		t.Fatalf("diff output %q missing budget violation", stdout)
	}
}
