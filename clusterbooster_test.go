package clusterbooster

import (
	"strings"
	"testing"
)

func TestPrototypeFacade(t *testing.T) {
	sys := Prototype()
	if sys.Machine == nil || sys.Runtime == nil || sys.Scheduler == nil {
		t.Fatal("prototype incomplete")
	}
	if len(sys.NVMe) != 24 || len(sys.NAM) != 2 || sys.FS == nil {
		t.Fatal("storage stack incomplete")
	}
}

func TestXPicThroughFacade(t *testing.T) {
	sys := New(1, 1, Options{WithoutStorage: true})
	cfg := XPicQuickConfig(4)
	rep, err := sys.RunXPicSplit(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestTable2ConfigIsPaperWorkload(t *testing.T) {
	cfg := XPicTable2Config()
	if cfg.Cells() != 4096 || cfg.PPC != 2048 {
		t.Fatalf("Table II workload wrong: %d cells, %d ppc", cfg.Cells(), cfg.PPC)
	}
}

func TestExperimentGeneratorsExported(t *testing.T) {
	if !strings.Contains(RenderTable1(), "EXTOLL") {
		t.Fatal("Table1 renderer broken")
	}
	if len(Table1()) < 10 {
		t.Fatal("Table1 incomplete")
	}
}
