package clusterbooster

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the ablation benches A1-A6 of DESIGN.md. The interesting output of
// each bench is the *virtual* time and derived ratios, reported through
// b.ReportMetric; wall time measures only the simulator itself.
//
// Benches default to reduced workloads (fewer steps, higher particle scale)
// so `go test -bench=.` completes in minutes. Shapes are step-linear and
// exactly scale-invariant, so ratios match the full Table II workload; run
// `cmd/deepsim` for full-size numbers.

import (
	"testing"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/bench"
	"clusterbooster/internal/core"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/msa"
	"clusterbooster/internal/nam"
	"clusterbooster/internal/omps"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/sion"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// benchConfig is the reduced Table II workload used by the benches.
func benchConfig() xpic.Config {
	cfg := xpic.Table2Config()
	cfg.Steps = 60
	cfg.ParticleScale = 512
	return cfg
}

// BenchmarkTable1Inventory regenerates Table I (hardware configuration).
func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) < 10 {
			b.Fatal("table I incomplete")
		}
	}
}

// BenchmarkFig3Latency measures the small-message MPI latency curves of
// Fig. 3 (lower panel) through the full psmpi + fabric stack.
func BenchmarkFig3Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].LatencyUs[bench.CNCN], "CN-CN-µs")
		b.ReportMetric(rows[0].LatencyUs[bench.BNBN], "BN-BN-µs")
	}
}

// BenchmarkFig3Bandwidth reports the converged large-message bandwidth of
// Fig. 3 (upper panel).
func BenchmarkFig3Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.BandwidthMBs[bench.CNCN], "CN-CN-MB/s")
		b.ReportMetric(last.BandwidthMBs[bench.BNBN], "BN-BN-MB/s")
	}
}

// BenchmarkFig7SingleNode regenerates the single-node comparison of Fig. 7
// and reports the paper's four headline ratios.
func BenchmarkFig7SingleNode(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FieldAdvantage(), "field-x")
		b.ReportMetric(res.ParticleAdvantage(), "particle-x")
		b.ReportMetric(res.GainVsCluster(), "gain-vs-C")
		b.ReportMetric(res.GainVsBooster(), "gain-vs-B")
	}
}

// BenchmarkFig8Scaling regenerates the strong-scaling study of Fig. 8 and
// reports the 8-node gains and parallel efficiencies.
func BenchmarkFig8Scaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig8(cfg, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Points) - 1
		b.ReportMetric(res.GainVsCluster(last), "gain-vs-C@8")
		b.ReportMetric(res.GainVsBooster(last), "gain-vs-B@8")
		b.ReportMetric(100*res.Efficiency(xpic.SplitCB, last), "eff-C+B-%")
		b.ReportMetric(100*res.Efficiency(xpic.ClusterOnly, last), "eff-C-%")
		b.ReportMetric(100*res.Efficiency(xpic.BoosterOnly, last), "eff-B-%")
	}
}

// BenchmarkAblationOffloadPath (A1) compares the two porting paths of
// §III-A/B: raw spawn+MPI offload vs the OmpSs task layer, for the same
// particle-class kernel.
func BenchmarkAblationOffloadPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		work := machine.Work{Class: machine.KernelParticle, Flops: 3e10}

		// Path 1: raw MPI — spawn and exchange by hand.
		sys1 := core.New(1, 1, core.Options{WithoutStorage: true})
		sys1.Runtime.Register("kernel", func(p *psmpi.Proc) error {
			p.Recv(p.Parent(), 0, 1)
			p.Compute(work)
			p.Send(p.Parent(), 0, 2, nil, 1<<20)
			return nil
		})
		nodes, _ := sys1.ClusterNodes(1)
		res1, err := sys1.Runtime.Launch(psmpi.LaunchSpec{Nodes: nodes, Main: func(p *psmpi.Proc) error {
			inter, err := p.Spawn(p.World(), psmpi.SpawnSpec{Binary: "kernel", Procs: 1, Module: machine.Booster})
			if err != nil {
				return err
			}
			p.Send(inter, 0, 1, nil, 1<<20)
			p.Recv(inter, 0, 2)
			return nil
		}})
		if err != nil {
			b.Fatal(err)
		}

		// Path 2: OmpSs offload through the worker protocol.
		sys2 := core.New(1, 1, core.Options{WithoutStorage: true})
		sys2.Runtime.Register("omps_worker", omps.WorkerMain)
		nodes2, _ := sys2.ClusterNodes(1)
		var makespan2 vclock.Time
		res2, err := sys2.Runtime.Launch(psmpi.LaunchSpec{Nodes: nodes2, Main: func(p *psmpi.Proc) error {
			inter, err := p.Spawn(p.World(), psmpi.SpawnSpec{Binary: "omps_worker", Procs: 1, Module: machine.Booster})
			if err != nil {
				return err
			}
			g := omps.NewGraph(p, 0)
			g.AddOffload("kernel", nil, work, 1<<20, 1<<20, nil)
			r, err := g.RunWithOffload(inter, 0)
			if err != nil {
				return err
			}
			makespan2 = r.Makespan
			omps.StopWorker(p, inter, 0)
			return nil
		}})
		if err != nil {
			b.Fatal(err)
		}
		_ = res2
		b.ReportMetric(res1.Makespan.Seconds()*1e3, "rawMPI-ms")
		b.ReportMetric(makespan2.Seconds()*1e3, "omps-ms")
	}
}

// BenchmarkAblationCheckpointTargets (A2) compares the checkpoint levels:
// NVMe-local vs buddy vs global BeeGFS vs network-attached memory (ref [6]).
func BenchmarkAblationCheckpointTargets(b *testing.B) {
	const ckptBytes = 64 << 20
	for i := 0; i < b.N; i++ {
		sys := core.Prototype()
		nodes, _ := sys.ClusterNodes(4)
		data := make([]byte, ckptBytes)

		report := func(name string, cfg scr.Config, levels []scr.Level) {
			mgr, err := scr.New(cfg, sys.Network, sys.FS, nodes, sys.NVMe)
			if err != nil {
				b.Fatal(err)
			}
			mgr.BeginCheckpoint(1)
			var done vclock.Time
			for rank := 0; rank < 4; rank++ {
				a := ioev.Detach(nil, 0)
				if err := mgr.Checkpoint(a, rank, 1, data, levels); err != nil {
					b.Fatal(err)
				}
				done = vclock.Max(done, a.Now())
			}
			a := ioev.Detach(nil, done)
			if err := mgr.CompleteGlobal(a, 1, 0); err == nil && a.Now() > done {
				done = a.Now()
			}
			b.ReportMetric(done.Seconds()*1e3, name)
		}
		report("local-ms", scr.Config{}, []scr.Level{scr.LevelLocal})
		report("buddy-ms", scr.Config{BuddyEvery: 1}, []scr.Level{scr.LevelBuddy})
		report("global-ms", scr.Config{GlobalEvery: 1}, []scr.Level{scr.LevelGlobal})

		// NAM target: RDMA put of each rank's state, no remote CPU.
		dev := nam.New(sys.Network, "ckpt-nam", 2<<30)
		var namDone vclock.Time
		for rank := 0; rank < 4; rank++ {
			region, err := dev.Alloc(nodes[rank].Name(), ckptBytes)
			if err != nil {
				b.Fatal(err)
			}
			op, err := region.SubmitWrite(ioev.At(0), nodes[rank], ckptBytes)
			if err != nil {
				b.Fatal(err)
			}
			namDone = vclock.Max(namDone, op.Time())
		}
		b.ReportMetric(namDone.Seconds()*1e3, "nam-ms")
	}
}

// BenchmarkAblationCacheDomain (A3) compares BeeOND cache modes for an I/O
// burst: async cache vs sync cache vs writing the global FS directly.
func BenchmarkAblationCacheDomain(b *testing.B) {
	const burst = 128 << 20
	for i := 0; i < b.N; i++ {
		data := make([]byte, burst)

		sysA := core.Prototype()
		nodesA, _ := sysA.ClusterNodes(1)
		ca := beegfs.NewCache(sysA.FS, beegfs.CacheAsync, sysA.NVMe)
		aa := ioev.Detach(nodesA[0], 0)
		if err := ca.Write(aa, "/b", data); err != nil {
			b.Fatal(err)
		}
		tAsync := aa.Now()

		sysS := core.Prototype()
		nodesS, _ := sysS.ClusterNodes(1)
		cs := beegfs.NewCache(sysS.FS, beegfs.CacheSync, sysS.NVMe)
		as := ioev.Detach(nodesS[0], 0)
		if err := cs.Write(as, "/b", data); err != nil {
			b.Fatal(err)
		}
		tSync := as.Now()

		sysN := core.Prototype()
		nodesN, _ := sysN.ClusterNodes(1)
		ad := ioev.Detach(nodesN[0], 0)
		sysN.FS.Create(ad, "/b")
		if err := sysN.FS.Write(ad, "/b", 0, data); err != nil {
			b.Fatal(err)
		}
		tDirect := ad.Now()
		b.ReportMetric(tAsync.Seconds()*1e3, "async-ms")
		b.ReportMetric(tSync.Seconds()*1e3, "sync-ms")
		b.ReportMetric(tDirect.Seconds()*1e3, "direct-ms")
	}
}

// BenchmarkAblationSIONFanIn (A4) compares SIONlib's one-container
// concentration with naive file-per-task I/O at growing task counts.
func BenchmarkAblationSIONFanIn(b *testing.B) {
	const payload = 1 << 20
	for i := 0; i < b.N; i++ {
		for _, ntasks := range []int{4, 16, 64} {
			data := make([]byte, payload)

			sys1 := core.Prototype()
			n1, _ := sys1.ClusterNodes(1)
			w, _, err := sion.SubmitCreate(sys1.FS, "/c.sion", ntasks, 256<<10, n1[0], ioev.At(0))
			if err != nil {
				b.Fatal(err)
			}
			var tSion vclock.Time
			for task := 0; task < ntasks; task++ {
				done, err := w.SubmitWriteTask(ioev.At(0), task, data, n1[0])
				if err != nil {
					b.Fatal(err)
				}
				tSion = vclock.Max(tSion, done.Time())
			}
			closed, err := w.SubmitClose(ioev.At(tSion), n1[0])
			if err != nil {
				b.Fatal(err)
			}
			tSion = closed.Time()

			sys2 := core.Prototype()
			n2, _ := sys2.ClusterNodes(1)
			var tFiles vclock.Time
			for task := 0; task < ntasks; task++ {
				path := "/task-" + string(rune('a'+task%26)) + string(rune('0'+task/26))
				created := sys2.FS.SubmitCreate(ioev.At(0), path, n2[0])
				done, err := sys2.FS.SubmitWrite(created, path, 0, data, n2[0])
				if err != nil {
					b.Fatal(err)
				}
				tFiles = vclock.Max(tFiles, done.Time())
			}
			if ntasks == 64 {
				b.ReportMetric(tSion.Seconds()*1e3, "sion64-ms")
				b.ReportMetric(tFiles.Seconds()*1e3, "files64-ms")
			}
		}
	}
}

// BenchmarkAblationOverlap (A5) quantifies the comm/compute overlap of
// Listings 2-4: C+B mode with and without the non-blocking overlap.
func BenchmarkAblationOverlap(b *testing.B) {
	cfg := benchConfig()
	cfg.DiagEvery = 1 // maximise the overlappable auxiliary work
	for i := 0; i < b.N; i++ {
		sys1 := core.New(1, 1, core.Options{WithoutStorage: true})
		with, err := sys1.RunXPicSplit(1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfgNo := cfg
		cfgNo.NoOverlap = true
		sys2 := core.New(1, 1, core.Options{WithoutStorage: true})
		without, err := sys2.RunXPicSplit(1, cfgNo)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.Makespan.Seconds(), "overlap-s")
		b.ReportMetric(without.Makespan.Seconds(), "blocking-s")
	}
}

// BenchmarkAblationRendezvous (A6) sweeps the eager/rendezvous threshold and
// reports mid-size message bandwidth sensitivity (the protocol-switch bump of
// Fig. 3).
func BenchmarkAblationRendezvous(b *testing.B) {
	const size = 32 << 10
	for i := 0; i < b.N; i++ {
		for _, thr := range []int{4 << 10, 16 << 10, 64 << 10} {
			sys := machine.New(2, 0)
			net := fabric.New(sys, fabric.Config{EagerThreshold: thr})
			bw := net.Bandwidth(sys.Node(0), sys.Node(1), size)
			switch thr {
			case 4 << 10:
				b.ReportMetric(bw/1e6, "thr4K-MB/s")
			case 16 << 10:
				b.ReportMetric(bw/1e6, "thr16K-MB/s")
			case 64 << 10:
				b.ReportMetric(bw/1e6, "thr64K-MB/s")
			}
		}
	}
}

// BenchmarkAblationModularVsAccelerated (A7) quantifies §II-A's resource
// argument: a complementary job mix on independent Cluster/Booster pools vs
// the same mix on an accelerated cluster with statically paired nodes.
func BenchmarkAblationModularVsAccelerated(b *testing.B) {
	mix := []sched.Job{
		{ID: 1, Cluster: 8, Duration: 10 * vclock.Second},
		{ID: 2, Booster: 8, Duration: 10 * vclock.Second},
		{ID: 3, Cluster: 8, Duration: 10 * vclock.Second},
		{ID: 4, Booster: 8, Duration: 10 * vclock.Second},
		{ID: 5, Cluster: 4, Booster: 4, Duration: 5 * vclock.Second},
	}
	for i := 0; i < b.N; i++ {
		m := sched.NewManager(machine.New(8, 8))
		mod, err := m.SimulateQueue(mix, sched.Backfill)
		if err != nil {
			b.Fatal(err)
		}
		acc, err := sched.SimulateAcceleratedQueue(mix, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mod.Makespan.Seconds(), "modular-s")
		b.ReportMetric(acc.Makespan.Seconds(), "accelerated-s")
	}
}

// BenchmarkAblationCheckpointInterval (A8) sweeps the checkpoint interval of
// the SCR failure simulation around the Young/Daly optimum (§III-D).
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	base := scr.SimParams{
		Work:           20000 * vclock.Second,
		CheckpointCost: 5 * vclock.Second,
		RestartCost:    20 * vclock.Second,
		MTBF:           1000 * vclock.Second,
		Seed:           1,
	}
	daly := scr.OptimalInterval(base.CheckpointCost, base.MTBF)
	for i := 0; i < b.N; i++ {
		_, outs, err := scr.SweepIntervals(base, []vclock.Time{daly / 5, daly, 5 * daly})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(outs[daly/5].Overhead*100, "over-ckpt-%")
		b.ReportMetric(outs[daly].Overhead*100, "daly-%")
		b.ReportMetric(outs[5*daly].Overhead*100, "under-ckpt-%")
	}
}

// BenchmarkMSAWorkflow exercises the Modular Supercomputing generalisation
// (§VI): an HPC + HPDA pipeline over three modules.
func BenchmarkMSAWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := msa.DEEPEST()
		res, err := sys.RunWorkflow([]msa.Stage{
			{Name: "simulate", Module: "Booster", Procs: 4,
				Work: machine.Work{Class: machine.KernelParticle, Flops: 2e9}},
			{Name: "analyse", Module: "DAM", Procs: 2,
				Work: machine.Work{Class: machine.KernelStream, Bytes: 128 << 20}, InBytes: 4 << 20},
		}, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
	}
}
