// Package clusterbooster is a from-scratch Go reproduction of the system
// described in "Application performance on a Cluster-Booster system"
// (Kreuzer, Eicker, Amaya, Suarez — IPDPS Workshops 2018, arXiv:1904.05275):
// the DEEP-ER prototype of the Cluster-Booster architecture, its software
// stack, and the xPic space-weather application whose partitioning across
// Cluster and Booster provides the paper's headline results.
//
// Because the original runs on hardware (Haswell + KNL nodes on an EXTOLL
// fabric) and an MPI stack that do not exist here, the package operates a
// deterministic virtual-time simulation platform: every MPI rank is a
// goroutine with a virtual clock, computation is costed through calibrated
// node models, and communication through a fabric model (see DESIGN.md for
// the substitution argument). The algorithms themselves are real — the PIC
// code really moves particles and solves Maxwell's equations; only time is
// modelled.
//
// Quick start:
//
//	sys := clusterbooster.Prototype()           // 16 Cluster + 8 Booster nodes
//	rep, err := sys.RunXPicSplit(8, clusterbooster.XPicTable2Config())
//	fmt.Println(rep)                            // C+B runtimes, solver split
//
// The sub-systems are importable through this façade:
//
//	System.Runtime    — ParaStation-like MPI (p2p, collectives, Comm_spawn)
//	System.Scheduler  — module-aware resource manager and batch queue
//	System.FS         — BeeGFS-like parallel file system (+BeeOND cache)
//	System.NVMe       — per-node NVMe devices
//	System.NAM        — network-attached memory on the fabric
//
// Experiments: the Fig3/Fig7/Fig8/Table1/Table2 generators reproduce every
// table and figure of the paper's evaluation. Each is also registered in the
// experiment registry as a named, versioned experiment with a golden
// baseline, diffable and re-recordable via cmd/cbctl; see EXPERIMENTS.md.
package clusterbooster

import (
	"clusterbooster/internal/bench"
	"clusterbooster/internal/core"
	"clusterbooster/internal/exp"
	"clusterbooster/internal/msa"
	"clusterbooster/internal/resilience"
	"clusterbooster/internal/xpic"
)

// System is a booted Cluster-Booster machine (alias of the core type).
type System = core.System

// Options tunes system construction.
type Options = core.Options

// XPicConfig parameterises an xPic run.
type XPicConfig = xpic.Config

// XPicReport is the outcome of an xPic run.
type XPicReport = xpic.Report

// New builds a system with the given node counts per module.
func New(clusterNodes, boosterNodes int, opts Options) *System {
	return core.New(clusterNodes, boosterNodes, opts)
}

// Prototype builds the DEEP-ER prototype: 16 Cluster + 8 Booster nodes with
// the full storage stack (Table I of the paper).
func Prototype() *System { return core.Prototype() }

// ModularSystem is an N-module Modular Supercomputing machine — the §VI
// generalisation of the Cluster-Booster concept (DEEP-EST).
type ModularSystem = msa.System

// ModuleDef declares one module of a modular system.
type ModuleDef = msa.ModuleDef

// NewModular builds a modular system from explicit module definitions.
func NewModular(defs []ModuleDef) (*ModularSystem, error) { return msa.New(defs) }

// DEEPEST builds the three-module DEEP-EST-style prototype
// (Cluster + Booster + Data Analytics Module).
func DEEPEST() *ModularSystem { return msa.DEEPEST() }

// XPicTable2Config returns the paper's experiment setup (Table II): 4096
// cells per node, 2048 particles per cell.
func XPicTable2Config() XPicConfig { return xpic.Table2Config() }

// XPicQuickConfig returns a laptop-quick xPic workload for experimentation.
func XPicQuickConfig(steps int) XPicConfig { return xpic.QuickConfig(steps) }

// Experiment generators, re-exported from the harness. Each returns the rows
// or series of the corresponding table/figure of the paper.
var (
	// Table1 reproduces the hardware-configuration table.
	Table1 = bench.Table1
	// RenderTable1 renders it as text.
	RenderTable1 = bench.RenderTable1
	// Fig3 measures the MPI bandwidth/latency curves.
	Fig3 = bench.Fig3
	// RenderFig3 renders them as text.
	RenderFig3 = bench.RenderFig3
	// Fig7 runs the three single-node xPic scenarios.
	Fig7 = bench.Fig7
	// RenderFig7 renders the result.
	RenderFig7 = bench.RenderFig7
	// Fig8 runs the strong-scaling study.
	Fig8 = bench.Fig8
	// RenderFig8 renders the result.
	RenderFig8 = bench.RenderFig8
)

// ResilienceParams describes a checkpoint/restart scenario under live
// node-failure injection (§III-D on the event kernel).
type ResilienceParams = resilience.Params

// ResilienceOutcome summarises a completed resilience scenario: the final
// report plus the failure/restart accounting.
type ResilienceOutcome = resilience.Outcome

// RunResilience executes a resilience scenario to completion: the job
// checkpoints through the SCR stack, seeded failures tear it down as kernel
// events, and each failure rewinds to the best surviving checkpoint level.
func RunResilience(p ResilienceParams) (ResilienceOutcome, error) { return resilience.Run(p) }

// Experiment is one registered entry of the experiment catalog.
type Experiment = exp.Experiment

// ExperimentDocument is the canonical JSON outcome of an experiment run.
type ExperimentDocument = exp.Document

// The experiment registry (see EXPERIMENTS.md): every paper artifact and
// standing sweep as a named, versioned experiment with a golden baseline.
var (
	// Experiments returns the full catalog in paper order.
	Experiments = exp.All
	// ExperimentByName looks one experiment up.
	ExperimentByName = exp.Get
)
